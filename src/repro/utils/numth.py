"""Number-theoretic primitives used by the group and commitment layers.

Everything here is implemented from scratch on Python integers: the crypto
substrate of the paper (Schnorr groups over Z*p, Pedersen commitments,
Σ-protocols) needs primality testing, safe-prime generation, modular
inverses, Legendre symbols and modular square roots — nothing more.

Miller–Rabin here is used with 64 rounds, giving error probability at most
4^-64 per composite, far below the 2^-80 bar usually taken as "negligible"
for protocol parameters.
"""

from __future__ import annotations

import random

from repro.errors import ParameterError

__all__ = [
    "is_probable_prime",
    "miller_rabin",
    "next_safe_prime",
    "random_safe_prime",
    "inverse_mod",
    "legendre_symbol",
    "sqrt_mod",
    "crt_pair",
]

# Small primes for cheap trial division before Miller-Rabin.
_SMALL_PRIMES = [
    2, 3, 5, 7, 11, 13, 17, 19, 23, 29, 31, 37, 41, 43, 47, 53, 59, 61, 67,
    71, 73, 79, 83, 89, 97, 101, 103, 107, 109, 113, 127, 131, 137, 139,
    149, 151, 157, 163, 167, 173, 179, 181, 191, 193, 197, 199, 211, 223,
    227, 229, 233, 239, 241, 251, 257, 263, 269, 271, 277, 281, 283, 293,
]


def miller_rabin(n: int, rounds: int = 64, rng: random.Random | None = None) -> bool:
    """Miller–Rabin primality test.

    Deterministic witnesses are used for n < 3.3e24 (a well-known witness
    set), falling back to random witnesses beyond that.
    """
    if n < 2:
        return False
    for p in _SMALL_PRIMES:
        if n == p:
            return True
        if n % p == 0:
            return False

    d = n - 1
    r = 0
    while d % 2 == 0:
        d //= 2
        r += 1

    def composite_witness(a: int) -> bool:
        x = pow(a, d, n)
        if x in (1, n - 1):
            return False
        for _ in range(r - 1):
            x = (x * x) % n
            if x == n - 1:
                return False
        return True

    if n < 3317044064679887385961981:
        # Deterministic for this range (Sorenson & Webster witness set).
        witnesses = [2, 3, 5, 7, 11, 13, 17, 19, 23, 29, 31, 37, 41]
    else:
        rng = rng or random.Random(n)  # deterministic per n, adequate for tests
        witnesses = [rng.randrange(2, n - 1) for _ in range(rounds)]

    return not any(composite_witness(a % n) for a in witnesses if a % n not in (0, 1, n - 1))


def is_probable_prime(n: int) -> bool:
    """Return True if ``n`` is (probably) prime."""
    return miller_rabin(n)


def next_safe_prime(start: int) -> int:
    """Return the smallest safe prime p >= start (p and (p-1)/2 both prime)."""
    if start < 5:
        return 5
    p = start | 1
    while True:
        if p % 12 == 11 and is_probable_prime((p - 1) // 2) and is_probable_prime(p):
            return p
        p += 2


def random_safe_prime(bits: int, rng: random.Random) -> int:
    """Sample a random safe prime with exactly ``bits`` bits.

    Used only for parameter generation; the library ships pre-generated,
    verified parameters so this is never on a protocol's hot path.
    """
    if bits < 8:
        raise ParameterError(f"safe primes need at least 8 bits, got {bits}")
    while True:
        q = rng.getrandbits(bits - 1) | (1 << (bits - 2)) | 1
        p = 2 * q + 1
        if p.bit_length() != bits:
            continue
        if is_probable_prime(q) and is_probable_prime(p):
            return p


def inverse_mod(a: int, m: int) -> int:
    """Modular inverse of ``a`` modulo ``m``.

    Raises :class:`ParameterError` when gcd(a, m) != 1.
    """
    a %= m
    if a == 0:
        raise ParameterError("0 has no modular inverse")
    try:
        return pow(a, -1, m)
    except ValueError as exc:  # pragma: no cover - non-coprime input
        raise ParameterError(f"{a} not invertible mod {m}") from exc


def batch_inverse(values: list[int], m: int) -> list[int]:
    """Modular inverses of all ``values`` mod ``m`` with one inversion.

    Montgomery's trick: prefix-multiply, invert the total once, then
    unwind — 3(n-1) multiplications plus a single :func:`inverse_mod`
    instead of n inversions.  Raises :class:`ParameterError` if any value
    is not invertible.
    """
    if not values:
        return []
    reduced = [value % m for value in values]
    if any(value == 0 for value in reduced):
        raise ParameterError("0 has no modular inverse")
    prefix = [0] * len(reduced)
    acc = 1
    for i, value in enumerate(reduced):
        acc = acc * value % m
        prefix[i] = acc
    inv = inverse_mod(acc, m)
    out = [0] * len(reduced)
    for i in range(len(reduced) - 1, 0, -1):
        out[i] = prefix[i - 1] * inv % m
        inv = inv * reduced[i] % m
    out[0] = inv
    return out


def legendre_symbol(a: int, p: int) -> int:
    """Legendre symbol (a|p) for odd prime p: 1, -1, or 0."""
    a %= p
    if a == 0:
        return 0
    ls = pow(a, (p - 1) // 2, p)
    return -1 if ls == p - 1 else 1


def sqrt_mod(a: int, p: int) -> int:
    """A square root of ``a`` modulo odd prime ``p`` (Tonelli–Shanks).

    Raises :class:`ParameterError` if ``a`` is a non-residue.
    """
    a %= p
    if a == 0:
        return 0
    if legendre_symbol(a, p) != 1:
        raise ParameterError("not a quadratic residue")
    if p % 4 == 3:
        return pow(a, (p + 1) // 4, p)

    # Tonelli-Shanks general case.
    q = p - 1
    s = 0
    while q % 2 == 0:
        q //= 2
        s += 1
    z = 2
    while legendre_symbol(z, p) != -1:
        z += 1
    m, c, t, r = s, pow(z, q, p), pow(a, q, p), pow(a, (q + 1) // 2, p)
    while t != 1:
        t2 = t
        i = 0
        for i in range(1, m):
            t2 = (t2 * t2) % p
            if t2 == 1:
                break
        b = pow(c, 1 << (m - i - 1), p)
        m, c = i, (b * b) % p
        t, r = (t * c) % p, (r * b) % p
    return r


def crt_pair(r1: int, m1: int, r2: int, m2: int) -> int:
    """Chinese remaindering for two coprime moduli."""
    g = inverse_mod(m1, m2)
    diff = (r2 - r1) % m2
    return (r1 + m1 * ((diff * g) % m2)) % (m1 * m2)
