"""Executable demonstration of Theorem 5.2: information-theoretic
verifiable DP is impossible.

The theorem: no verifiable-DP protocol has *both* unconditional soundness
and statistical zero-knowledge, because commitments cannot be both
statistically binding and statistically hiding.  This module makes the
two horns of that dilemma concrete on a deliberately tiny group
("p32-sim") where a baby-step/giant-step discrete-log solver plays the
role of the computationally unbounded adversary:

* **Horn 1 — statistically hiding (Pedersen) ⇒ soundness breaks.**
  :class:`UnboundedEquivocator` extracts λ = log_g(h) and opens one
  Pedersen commitment to *any* value: the Line 13 check of ΠBin passes
  for a tally shifted by Δ.  An unbounded curator can bias verifiable DP
  at will.

* **Horn 2 — statistically binding (ElGamal) ⇒ privacy breaks.**
  :class:`ElGamalCommitmentScheme` commits as (g^r, g^x·h^r); binding is
  *perfect* (the pair determines x), but the same BSGS adversary recovers
  r from g^r and then x — an unbounded verifier reads client inputs off
  the public transcript.  Statistical ZK is gone.

``demonstrate_separation`` runs both horns and returns a report; the test
suite asserts both breaks succeed on the toy group and that the same
attacks are infeasible-by-construction on the production group sizes
(where BSGS needs ~2^64+ work).
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.crypto.pedersen import Opening, PedersenParams
from repro.crypto.schnorr_group import SchnorrElement, SchnorrGroup
from repro.errors import CryptoError, ParameterError
from repro.utils.numth import inverse_mod
from repro.utils.rng import RNG, default_rng

__all__ = [
    "discrete_log_bsgs",
    "UnboundedEquivocator",
    "ElGamalCommitmentScheme",
    "SeparationReport",
    "demonstrate_separation",
]


def discrete_log_bsgs(group: SchnorrGroup, base: SchnorrElement, target: SchnorrElement) -> int:
    """Baby-step/giant-step discrete log: O(√q) time and memory.

    The "unbounded adversary" oracle.  Refuses groups with order above
    2^40 — on production parameters this attack is the discrete-log
    assumption's security margin, not a real threat.
    """
    q = group.order
    if q.bit_length() > 40:
        raise ParameterError(
            "BSGS oracle restricted to toy groups (order <= 2^40); "
            "on production groups this is exactly the hardness assumption"
        )
    m = math.isqrt(q) + 1
    # Baby steps: base^j for j in [0, m).
    table: dict[int, int] = {}
    current = group.identity()
    for j in range(m):
        table.setdefault(current.value, j)
        current = current * base
    # Giant steps: target * (base^-m)^i.
    factor = base.scale((-m) % q)
    gamma = target
    for i in range(m + 1):
        j = table.get(gamma.value)
        if j is not None:
            return (i * m + j) % q
        gamma = gamma * factor
    raise CryptoError("discrete log not found (target outside the subgroup?)")


class UnboundedEquivocator:
    """Horn 1: break Pedersen binding given unbounded computation."""

    def __init__(self, params: PedersenParams) -> None:
        if not isinstance(params.group, SchnorrGroup):
            raise ParameterError("equivocation demo implemented for Schnorr groups")
        self.params = params
        # The unbounded step: recover the trapdoor log_g(h).
        self.trapdoor = discrete_log_bsgs(params.group, params.g, params.h)

    def equivocate(self, opening: Opening, new_value: int) -> Opening:
        """An opening of the *same* commitment to a different value.

        Com(x, r) = g^x h^r = g^{x'} h^{r'}  ⇔  r' = r + (x - x')/λ mod q.
        """
        q = self.params.q
        new_value %= q
        shift = (opening.value - new_value) % q
        new_randomness = (opening.randomness + shift * inverse_mod(self.trapdoor, q)) % q
        return Opening(new_value, new_randomness)

    def forge_tally(self, y: int, z: int, bias: int) -> tuple[int, int]:
        """A (y+bias, z') passing the same Line 13 check as (y, z)."""
        forged = self.equivocate(Opening(y, z), (y + bias) % self.params.q)
        return forged.value, forged.randomness


class ElGamalCommitmentScheme:
    """Horn 2: a perfectly *binding* (hence not statistically hiding)
    commitment: Com(x, r) = (g^r, g^x · h^r)."""

    def __init__(self, group: SchnorrGroup, *, h_label: bytes = b"repro.elgamal.h") -> None:
        self.group = group
        self.g = group.generator()
        self.h = group.hash_to_group(h_label)
        self.q = group.order

    def commit(self, value: int, rng: RNG | None = None) -> tuple[tuple[SchnorrElement, SchnorrElement], int]:
        r = default_rng(rng).field_element(self.q)
        c = (self.g ** r, (self.g ** (value % self.q)) * (self.h ** r))
        return c, r

    def verify(self, commitment: tuple[SchnorrElement, SchnorrElement], value: int, r: int) -> bool:
        c1, c2 = commitment
        return c1 == self.g ** r and c2 == (self.g ** (value % self.q)) * (self.h ** r)

    def unbounded_extract(self, commitment: tuple[SchnorrElement, SchnorrElement]) -> int:
        """An unbounded verifier reads the committed value directly."""
        c1, c2 = commitment
        r = discrete_log_bsgs(self.group, self.g, c1)
        g_x = c2 * (self.h ** ((-r) % self.q))
        return discrete_log_bsgs(self.group, self.g, g_x)


@dataclass(frozen=True)
class SeparationReport:
    """Outcome of both horns on the toy group."""

    pedersen_equivocation_succeeded: bool
    forged_bias: int
    elgamal_extraction_succeeded: bool
    extracted_value: int
    group_bits: int

    def summary(self) -> str:
        return (
            f"toy group (~2^{self.group_bits}): "
            f"unbounded prover equivocates Pedersen (soundness broken: "
            f"{self.pedersen_equivocation_succeeded}, tally shifted by "
            f"{self.forged_bias}); unbounded verifier extracts from ElGamal "
            f"(privacy broken: {self.elgamal_extraction_succeeded}, read value "
            f"{self.extracted_value}) — no commitment offers both, hence "
            f"Theorem 5.2"
        )


def demonstrate_separation(
    *, bias: int = 7, secret: int = 1, rng: RNG | None = None
) -> SeparationReport:
    """Run both horns of the impossibility on the toy group."""
    rng = default_rng(rng)
    group = SchnorrGroup.named("p32-sim")

    # Horn 1: Pedersen equivocation.
    pedersen = PedersenParams(group)
    y = 123 % group.order
    commitment, opening = pedersen.commit_fresh(y, rng)
    equivocator = UnboundedEquivocator(pedersen)
    forged_y, forged_z = equivocator.forge_tally(opening.value, opening.randomness, bias)
    horn1 = pedersen.opens_to(commitment, Opening(forged_y, forged_z)) and forged_y != y

    # Horn 2: ElGamal extraction.
    elgamal = ElGamalCommitmentScheme(group)
    c, _ = elgamal.commit(secret, rng)
    extracted = elgamal.unbounded_extract(c)
    horn2 = extracted == secret % group.order

    return SeparationReport(
        pedersen_equivocation_succeeded=horn1,
        forged_bias=bias,
        elgamal_extraction_succeeded=horn2,
        extracted_value=extracted,
        group_bits=group.order.bit_length(),
    )
