"""Statistical tests for protocol randomness.

The completeness half of Theorem 4.1 says the protocol's noise is
*exactly* Binomial(nb, 1/2) and the Morra bits are unbiased; these
helpers turn those claims into testable statistics (chi-square
goodness-of-fit, total-variation distance) used by the test-suite and the
zero-knowledge indistinguishability checks.
"""

from __future__ import annotations

import math
from collections import Counter
from typing import Sequence

from scipy import stats

from repro.dp.smoothness import binomial_log_pmf
from repro.errors import ParameterError

__all__ = [
    "chi_square_uniform",
    "binomial_goodness_of_fit",
    "total_variation_from_binomial",
]


def chi_square_uniform(bits: Sequence[int]) -> float:
    """p-value that a bit sequence is Bernoulli(1/2) i.i.d. (chi-square)."""
    n = len(bits)
    if n == 0:
        raise ParameterError("empty sample")
    ones = sum(bits)
    observed = [n - ones, ones]
    result = stats.chisquare(observed, [n / 2.0, n / 2.0])
    return float(result.pvalue)


def binomial_goodness_of_fit(samples: Sequence[int], nb: int) -> float:
    """p-value that integer samples follow Binomial(nb, 1/2).

    Bins the support adaptively so expected counts stay above 5 (the
    usual chi-square validity rule).
    """
    n = len(samples)
    if n == 0:
        raise ParameterError("empty sample")
    pmf = [math.exp(binomial_log_pmf(nb, y)) for y in range(nb + 1)]

    # Greedy binning left to right until each bin expects >= 5.
    bins: list[tuple[int, int]] = []
    start = 0
    acc = 0.0
    for y in range(nb + 1):
        acc += pmf[y]
        if acc * n >= 5.0:
            bins.append((start, y))
            start = y + 1
            acc = 0.0
    if start <= nb:
        if bins:
            bins[-1] = (bins[-1][0], nb)
        else:
            bins.append((0, nb))

    counts = Counter(samples)
    observed = []
    expected = []
    for lo, hi in bins:
        observed.append(sum(counts.get(y, 0) for y in range(lo, hi + 1)))
        expected.append(n * sum(pmf[lo : hi + 1]))
    # Normalize tiny float drift so scipy's sum check passes.
    scale = sum(observed) / sum(expected)
    expected = [e * scale for e in expected]
    if len(observed) < 2:
        return 1.0
    result = stats.chisquare(observed, expected)
    return float(result.pvalue)


def total_variation_from_binomial(samples: Sequence[int], nb: int) -> float:
    """Empirical TV distance between samples and Binomial(nb, 1/2)."""
    n = len(samples)
    if n == 0:
        raise ParameterError("empty sample")
    counts = Counter(samples)
    tv = 0.0
    support = set(counts) | set(range(nb + 1))
    for y in support:
        empirical = counts.get(y, 0) / n
        theoretical = math.exp(binomial_log_pmf(nb, y)) if 0 <= y <= nb else 0.0
        tv += abs(empirical - theoretical)
    return tv / 2.0
