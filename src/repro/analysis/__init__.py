"""Analysis utilities: error measurement, distribution tests, and the
Section 5 separation demonstration."""

from repro.analysis.error import empirical_error, error_sweep, protocol_error
from repro.analysis.selection import SelectionAccuracy, selection_accuracy
from repro.analysis.distributions import (
    chi_square_uniform,
    total_variation_from_binomial,
    binomial_goodness_of_fit,
)
from repro.analysis.separation import (
    discrete_log_bsgs,
    UnboundedEquivocator,
    ElGamalCommitmentScheme,
    demonstrate_separation,
)

__all__ = [
    "empirical_error",
    "error_sweep",
    "protocol_error",
    "SelectionAccuracy",
    "selection_accuracy",
    "chi_square_uniform",
    "total_variation_from_binomial",
    "binomial_goodness_of_fit",
    "discrete_log_bsgs",
    "UnboundedEquivocator",
    "ElGamalCommitmentScheme",
    "demonstrate_separation",
]
