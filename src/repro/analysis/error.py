"""Empirical DP-Error measurement (Definition 6) and sweep utilities.

Backs the ``err`` experiment: central-model mechanisms (Binomial,
Laplace, Gaussian) have Err independent of n and O(1/ε), local
randomized response pays O(√n/ε), and the MPC instantiation of ΠBin pays
a factor √K over the single curator (K independent noise copies) — all
three relationships are measured here and asserted in tests.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from repro.api import CountQuery, Session
from repro.dp.mechanism import Mechanism
from repro.dp.randomized_response import RandomizedResponse
from repro.errors import ParameterError
from repro.utils.rng import RNG, SeededRNG, default_rng

__all__ = ["ErrorPoint", "empirical_error", "error_sweep", "protocol_error"]


@dataclass(frozen=True)
class ErrorPoint:
    """One (mechanism, parameters) → measured error entry."""

    mechanism: str
    epsilon: float
    n: int
    error: float


def empirical_error(
    mechanism: Mechanism,
    dataset: Sequence[int],
    trials: int,
    rng: RNG | None = None,
) -> float:
    """Mean |released - true| for a counting query over ``dataset``."""
    if trials < 1:
        raise ParameterError("need at least one trial")
    rng = default_rng(rng)
    true = float(sum(dataset))
    total = 0.0
    if isinstance(mechanism, RandomizedResponse):
        for _ in range(trials):
            total += abs(mechanism.run_protocol(dataset, rng).value - true)
    else:
        for _ in range(trials):
            total += abs(mechanism.release(true, rng).value - true)
    return total / trials


def error_sweep(
    mechanisms: dict[str, Mechanism],
    dataset: Sequence[int],
    trials: int,
    rng: RNG | None = None,
) -> list[ErrorPoint]:
    """Measure every mechanism on the same dataset."""
    rng = default_rng(rng)
    return [
        ErrorPoint(
            mechanism=name,
            epsilon=mechanism.epsilon,
            n=len(dataset),
            error=empirical_error(mechanism, dataset, trials, rng),
        )
        for name, mechanism in mechanisms.items()
    ]


def protocol_error(
    dataset_bits: Sequence[int],
    epsilon: float,
    delta: float,
    *,
    num_provers: int = 1,
    trials: int = 20,
    group: str = "p128-sim",
    nb_override: int | None = None,
    seed: str = "protocol-error",
) -> float:
    """Mean |estimate - true| of full ΠBin runs (protocol-level Err).

    Expensive (each trial is a complete protocol execution); benchmarks
    use modest trial counts and the scaled test group.
    """
    query = CountQuery(epsilon, delta)
    true = float(sum(dataset_bits))
    total = 0.0
    for t in range(trials):
        session = Session(
            query,
            num_provers=num_provers,
            group=group,
            nb_override=nb_override,
            rng=SeededRNG(f"{seed}-{t}"),
        )
        session.submit(list(dataset_bits))
        result = session.release()
        if not result.accepted:
            raise ParameterError("honest run unexpectedly rejected")
        total += abs(result.results[0].estimate - true)
    return total / trials
