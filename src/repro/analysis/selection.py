"""Private selection: who wins the election, and at what privacy cost?

The paper's motivating query is a plurality election; its protocol
releases the *whole* noisy histogram and the analyst takes the argmax.
The classical central-model alternatives release *only the winner* —
the exponential mechanism and report-noisy-max (Section 7) — with better
selection accuracy per ε, but no known verifiable instantiation (the
concluding remarks: the selection distribution itself leaks).

This module measures that trade-off: the probability each approach names
the true winner, as a function of ε and the vote margin.  The experiment
(`benchmarks/bench_selection.py`) reproduces the qualitative ordering

    exponential ≈ noisy-max  >  verifiable histogram argmax

quantifying the "price of verifiability" for selection tasks.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from repro.dp.binomial import BinomialMechanism
from repro.dp.exponential import ExponentialMechanism, report_noisy_max
from repro.errors import ParameterError
from repro.utils.rng import RNG, default_rng

__all__ = ["SelectionAccuracy", "selection_accuracy"]


@dataclass(frozen=True)
class SelectionAccuracy:
    """Fraction of trials each mechanism picked the true argmax."""

    histogram_argmax: float
    exponential: float
    noisy_max: float
    epsilon: float
    margin: int


def selection_accuracy(
    counts: Sequence[int],
    epsilon: float,
    delta: float,
    trials: int,
    rng: RNG | None = None,
) -> SelectionAccuracy:
    """Monte-Carlo winner-recovery rates on a fixed histogram.

    ``histogram_argmax`` models ΠBin's release (independent Binomial noise
    per bin, argmax downstream); the other two are the unverifiable
    selection mechanisms at the same ε.
    """
    if trials < 1:
        raise ParameterError("need at least one trial")
    if len(counts) < 2:
        raise ParameterError("selection needs at least two candidates")
    rng = default_rng(rng)
    true_winner = max(range(len(counts)), key=counts.__getitem__)
    sorted_counts = sorted(counts, reverse=True)
    margin = sorted_counts[0] - sorted_counts[1]

    binomial = BinomialMechanism(epsilon, delta)
    exponential = ExponentialMechanism(epsilon)

    hist_hits = 0
    exp_hits = 0
    max_hits = 0
    for _ in range(trials):
        noisy = [binomial.release(float(c), rng).value for c in counts]
        hist_hits += max(range(len(counts)), key=noisy.__getitem__) == true_winner
        exp_hits += exponential.select(counts, rng) == true_winner
        max_hits += report_noisy_max(counts, epsilon, rng) == true_winner

    return SelectionAccuracy(
        histogram_argmax=hist_hits / trials,
        exponential=exp_hits / trials,
        noisy_max=max_hits / trials,
        epsilon=epsilon,
        margin=margin,
    )
