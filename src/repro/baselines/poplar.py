"""A Poplar-style private heavy-hitters system (Boneh et al.).

Clients hold a b-bit string; two servers find all strings held by at
least τ clients without learning anything else about individual inputs.
Poplar's core trick: clients encode their string as distributed point
functions, servers sweep a prefix tree level by level, evaluating the
DPFs on candidate prefixes and pruning prefixes whose (optionally
DP-noised) count falls below the threshold.

Substitution note (DESIGN.md): real Poplar uses *incremental* DPFs (one
key pair serving all levels).  Here each client supplies one ordinary DPF
per level — the naive variant that Poplar's IDPF optimizes — which keeps
the prefix-tree workflow, the DP accounting, and the Figure 1 attack
surface (malleable evaluation shares) intact at higher communication
cost.

The per-level attack surface is exactly Figure 1(a): a corrupted server
can shift its evaluation share for a victim client so the victim's prefix
counts are wrong, silently erasing the victim from the result — no
verification exists on the published partial sums.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.baselines.dpf import DpfKey, dpf_eval, dpf_gen
from repro.dp.binomial import coins_for_privacy, sample_binomial
from repro.errors import ParameterError
from repro.utils.rng import RNG, SystemRNG, default_rng

__all__ = ["PoplarClientKeys", "HeavyHitter", "PoplarSystem"]


@dataclass(frozen=True)
class PoplarClientKeys:
    """One client's DPF keys, one pair per prefix level."""

    client_id: str
    keys: tuple[tuple[DpfKey, DpfKey], ...]  # [level][party]


@dataclass(frozen=True)
class HeavyHitter:
    """A discovered heavy string and its (noisy) count."""

    value: int
    count: float


@dataclass
class PoplarSystem:
    """Two-server heavy-hitters over b-bit client strings."""

    string_bits: int
    q: int
    threshold: float
    epsilon: float | None = None
    delta: float | None = None
    rng: RNG = field(default_factory=SystemRNG)
    # Corruption hook: (client_id, level) pairs whose party-1 shares are
    # shifted by -1 — the undetectable Figure 1(a) deviation.  Applied at
    # the first level it deflates the victim's prefix below threshold,
    # pruning the victim's whole subtree out of the search.
    corrupt_shift: set[tuple[str, int]] = field(default_factory=set)

    def __post_init__(self) -> None:
        if not 1 <= self.string_bits <= 20:
            raise ParameterError("string_bits must be in [1, 20]")
        if (self.epsilon is None) != (self.delta is None):
            raise ParameterError("give both epsilon and delta, or neither")
        self._nb = (
            coins_for_privacy(self.epsilon, self.delta) if self.epsilon is not None else 0
        )

    # Client side -------------------------------------------------------------

    def encode_client(self, client_id: str, value: int, rng: RNG | None = None) -> PoplarClientKeys:
        """One DPF per level: level ℓ encodes the (ℓ+1)-bit prefix of value."""
        if not 0 <= value < (1 << self.string_bits):
            raise ParameterError("value outside the string domain")
        rng = default_rng(rng) if rng is not None else self.rng
        keys = []
        for level in range(1, self.string_bits + 1):
            prefix = value >> (self.string_bits - level)
            keys.append(dpf_gen(prefix, 1, level, self.q, rng))
        return PoplarClientKeys(client_id, tuple(keys))

    # Server sweep --------------------------------------------------------------

    def _prefix_count(
        self, clients: list[PoplarClientKeys], level: int, prefix: int
    ) -> float:
        """Reconstructed (and optionally noised) count of a prefix."""
        total = 0
        for client in clients:
            key0, key1 = client.keys[level - 1]
            share0 = dpf_eval(key0, prefix)
            share1 = dpf_eval(key1, prefix)
            if (client.client_id, level) in self.corrupt_shift:
                share1 = (share1 - 1) % self.q  # silent, unauthenticated shift
            total = (total + share0 + share1) % self.q
        if self._nb:
            noise0 = sample_binomial(self._nb, self.rng)
            noise1 = sample_binomial(self._nb, self.rng)
            return float((total + noise0 + noise1) % self.q) - self._nb
        return float(total)

    def heavy_hitters(self, clients: list[PoplarClientKeys]) -> list[HeavyHitter]:
        """Level-by-level prefix sweep with threshold pruning."""
        candidates = [0, 1]
        for level in range(1, self.string_bits):
            surviving = [
                p for p in candidates if self._prefix_count(clients, level, p) >= self.threshold
            ]
            candidates = [c for p in surviving for c in (p << 1, (p << 1) | 1)]
        hitters = []
        for candidate in candidates:
            count = self._prefix_count(clients, self.string_bits, candidate)
            if count >= self.threshold:
                hitters.append(HeavyHitter(candidate, count))
        return sorted(hitters, key=lambda h: (-h.count, h.value))
