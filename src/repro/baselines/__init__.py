"""Baseline systems the paper compares against.

* :mod:`repro.baselines.trusted_curator` — classical non-verifiable DP
  release (Section 6's "the non-verifiable protocol simply involves
  summing over n inputs [and] sampling one draw of Binomial noise").
* :mod:`repro.baselines.sketch` — the BGI16-style linear sketch used by
  PRIO/Poplar for client validation *without public-key crypto*; fast but
  vulnerable to the Figure 1 attacks.
* :mod:`repro.baselines.prio` — a PRIO-style 2-server aggregate system:
  secret-shared one-hot inputs, sketch validation, per-server DP noise.
* :mod:`repro.baselines.dpf` / :mod:`repro.baselines.poplar` — a
  PRG-based distributed point function and the Poplar-style prefix-tree
  heavy-hitters workflow built on it.
"""

from repro.baselines.trusted_curator import NonVerifiableCurator, MaliciousCurator
from repro.baselines.sketch import OneHotSketch, SketchClientPackage
from repro.baselines.prio import PrioSystem, PrioServer, CorruptPrioServer
from repro.baselines.dpf import DpfKey, dpf_gen, dpf_eval, dpf_eval_full
from repro.baselines.poplar import PoplarSystem, HeavyHitter
from repro.baselines.shuffle import ShuffleAggregator, amplified_epsilon

__all__ = [
    "NonVerifiableCurator",
    "MaliciousCurator",
    "OneHotSketch",
    "SketchClientPackage",
    "PrioSystem",
    "PrioServer",
    "CorruptPrioServer",
    "DpfKey",
    "dpf_gen",
    "dpf_eval",
    "dpf_eval_full",
    "PoplarSystem",
    "HeavyHitter",
    "ShuffleAggregator",
    "amplified_epsilon",
]
