"""The classical (non-verifiable) trusted curator.

"In the trusted curator model, the non-veriﬁable protocol simply involves
summing over n inputs, sampling one draw of Binomial noise and
aggregating the results" (Section 6).  :class:`NonVerifiableCurator` does
exactly that — it is the latency baseline for Table 1 (essentially the
Aggregation column alone) and the utility baseline for the error sweeps.

:class:`MaliciousCurator` is the paper's motivating adversary: it shifts
the tally and "blames any discrepancies in the result on random noise
introduced by DP".  Nothing in the non-verifiable protocol detects this —
the attack experiments quantify how statistically invisible the shift is
(a bias of the noise standard deviation is within ordinary noise range).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from repro.dp.mechanism import Mechanism, MechanismOutput, counting_query
from repro.dp.binomial import BinomialMechanism
from repro.utils.rng import RNG, default_rng

__all__ = ["NonVerifiableCurator", "MaliciousCurator"]


@dataclass
class NonVerifiableCurator:
    """An honest curator releasing a DP count with no proof."""

    mechanism: Mechanism

    @classmethod
    def binomial(cls, epsilon: float, delta: float) -> "NonVerifiableCurator":
        return cls(BinomialMechanism(epsilon, delta))

    def release_count(self, dataset: Sequence[int], rng: RNG | None = None) -> MechanismOutput:
        return self.mechanism.release(float(counting_query(dataset)), default_rng(rng))

    def release_histogram(
        self, choices: Sequence[int], bins: int, rng: RNG | None = None
    ) -> list[MechanismOutput]:
        rng = default_rng(rng)
        counts = [0] * bins
        for choice in choices:
            counts[choice] += 1
        return [self.mechanism.release(float(c), rng) for c in counts]


@dataclass
class MaliciousCurator(NonVerifiableCurator):
    """Shifts every release by ``bias`` and calls it noise.

    The released value is (true + honest_noise + bias); the reported
    ``noise`` field lies by construction — exactly the "perfect alibi"
    of the paper's abstract.
    """

    bias: float = 0.0

    def release_count(self, dataset: Sequence[int], rng: RNG | None = None) -> MechanismOutput:
        honest = super().release_count(dataset, rng)
        return MechanismOutput(honest.value + self.bias, honest.noise)

    def release_histogram(self, choices, bins, rng: RNG | None = None):
        outputs = super().release_histogram(choices, bins, rng)
        return [MechanismOutput(o.value + self.bias, o.noise) for o in outputs]
