"""The shuffle model of DP (Section 7 related work).

Shuffle privacy interposes a trusted shuffler between clients and the
analyzer: each client applies a *weak* local randomizer, the shuffler
strips identities and permutes, and amplification-by-shuffling lifts the
weak local guarantee to a strong central-style one (Erlingsson et al.,
Balle et al.'s "privacy blanket").

Implemented as a baseline because the paper positions it between local
and central DP: near-central error, but (a) it assumes a secure shuffler
("non-trivial to implement") and (b) it is neither auditable nor robust —
the shuffler is a single point of failure, demonstrated by the
``corrupt_drop`` hook.

Amplification bound used (Balle–Bell–Gascón–Nissim, simplified clone
form): shuffling n reports of an ε₀-LDP randomizer is (ε, δ)-DP with

    ε = min(ε₀, (e^{ε₀} - 1) · sqrt(14 · ln(2/δ) / n) + ...)  — we expose
    the standard engineering form ε ≈ e^{ε₀/2}·sqrt(14·ln(2/δ)/n)·(e^{ε₀}-1)/(e^{ε₀}+1)·2
    via :func:`amplified_epsilon` with the conservative simplification
    ε = (e^{ε₀} - 1) · sqrt(14·ln(2/δ)/n), valid for ε₀ <= 1 and n large.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

from repro.dp.randomized_response import RandomizedResponse
from repro.errors import ParameterError
from repro.utils.rng import RNG, SystemRNG, default_rng

__all__ = ["amplified_epsilon", "ShuffleAggregator"]


def amplified_epsilon(epsilon_local: float, n: int, delta: float) -> float:
    """Central ε after shuffling n ε₀-LDP reports (conservative form).

    ε = min(ε₀, (e^{ε₀} - 1)·sqrt(14·ln(2/δ)/n)); the min keeps the bound
    meaningful for tiny n (shuffling never *hurts*).
    """
    if epsilon_local <= 0:
        raise ParameterError("epsilon_local must be positive")
    if n < 1:
        raise ParameterError("n must be positive")
    if not 0 < delta < 1:
        raise ParameterError("delta must be in (0, 1)")
    amplified = (math.exp(epsilon_local) - 1.0) * math.sqrt(14.0 * math.log(2.0 / delta) / n)
    return min(epsilon_local, amplified)


@dataclass
class ShuffleAggregator:
    """Shuffler + analyzer for bit counting with randomized response.

    ``corrupt_drop`` names client indices the (corrupted) shuffler
    silently discards — undetectable by the analyzer, the same exclusion
    attack surface as Figure 1(a), now at the shuffler.
    """

    epsilon_local: float
    delta: float
    rng: RNG = field(default_factory=SystemRNG)
    corrupt_drop: frozenset[int] = frozenset()

    def run(self, bits: list[int], rng: RNG | None = None) -> tuple[float, float]:
        """Returns (debiased estimate, central ε after amplification)."""
        rng = default_rng(rng) if rng is not None else self.rng
        randomizer = RandomizedResponse(self.epsilon_local)
        reports = [
            randomizer.randomize_bit(bit, rng)
            for i, bit in enumerate(bits)
            if i not in self.corrupt_drop
        ]
        if not reports:
            raise ParameterError("shuffler dropped every report")
        rng.shuffle(reports)  # identity-stripping permutation
        estimate = randomizer.aggregate(reports)
        central = amplified_epsilon(self.epsilon_local, len(reports), self.delta)
        return estimate, central
