"""Distributed point functions (DPF), Boyle–Gilboa–Ishai style.

A DPF splits the point function f_{α,β}(x) = β·[x = α] into two keys such
that each key alone reveals nothing about (α, β), yet the two parties'
local evaluations add up to f over Z_q.  Poplar builds private
heavy-hitters from (incremental) DPFs; :mod:`repro.baselines.poplar` uses
this module with one DPF per prefix level (the simple variant the Poplar
paper optimizes, sufficient for the workflow and the attack study).

Construction: the classic GGM tree with per-level correction words
(Boyle, Gilboa, Ishai 2016).  The PRG is SHA-256 in expand mode — a
random-oracle stand-in for AES-NI, matching this reproduction's
pure-Python substitution policy (see DESIGN.md).

Key sizes are O(λ·n) for domain {0,1}^n; a single-point evaluation is n
PRG calls and :func:`dpf_eval_full` shares internal expansions across the
whole domain via a breadth-first walk.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass

from repro.errors import ParameterError
from repro.utils.rng import RNG, default_rng

__all__ = ["DpfKey", "dpf_gen", "dpf_eval", "dpf_eval_full"]

_LAMBDA_BYTES = 16


def _prg(seed: bytes) -> tuple[bytes, int, bytes, int]:
    """Expand a seed to (s_left, t_left, s_right, t_right)."""
    digest = hashlib.sha256(b"repro.dpf.prg|" + seed).digest()
    s_left = digest[:_LAMBDA_BYTES]
    s_right = digest[_LAMBDA_BYTES : 2 * _LAMBDA_BYTES]
    extra = hashlib.sha256(b"repro.dpf.prg.t|" + seed).digest()[0]
    t_left = extra & 1
    t_right = (extra >> 1) & 1
    return s_left, t_left, s_right, t_right


def _convert(seed: bytes, q: int) -> int:
    """Map a final seed to a pseudorandom element of Z_q."""
    digest = hashlib.sha512(b"repro.dpf.convert|" + seed).digest()
    return int.from_bytes(digest, "big") % q


def _xor(a: bytes, b: bytes) -> bytes:
    return bytes(x ^ y for x, y in zip(a, b))


@dataclass(frozen=True)
class DpfKey:
    """One party's DPF key: root seed plus per-level correction words."""

    party: int  # 0 or 1
    domain_bits: int
    q: int
    root_seed: bytes
    correction_words: tuple[tuple[bytes, int, int], ...]  # (s_cw, t_cw_left, t_cw_right)
    output_correction: int


def dpf_gen(
    alpha: int, beta: int, domain_bits: int, q: int, rng: RNG | None = None
) -> tuple[DpfKey, DpfKey]:
    """Generate a key pair for f_{α,β} over domain {0,1}^domain_bits."""
    if domain_bits < 1 or domain_bits > 40:
        raise ParameterError("domain_bits must be in [1, 40]")
    if not 0 <= alpha < (1 << domain_bits):
        raise ParameterError("alpha outside the domain")
    rng = default_rng(rng)

    root0 = rng.random_bytes(_LAMBDA_BYTES)
    root1 = rng.random_bytes(_LAMBDA_BYTES)
    seed0, seed1 = root0, root1
    t0, t1 = 0, 1
    corrections: list[tuple[bytes, int, int]] = []

    for level in range(domain_bits):
        bit = (alpha >> (domain_bits - 1 - level)) & 1
        s0l, t0l, s0r, t0r = _prg(seed0)
        s1l, t1l, s1r, t1r = _prg(seed1)
        if bit == 0:  # path keeps left; the right ("lose") side must cancel
            s_cw = _xor(s0r, s1r)
            keep0, keep1 = (s0l, t0l), (s1l, t1l)
        else:
            s_cw = _xor(s0l, s1l)
            keep0, keep1 = (s0r, t0r), (s1r, t1r)
        t_cw_left = t0l ^ t1l ^ bit ^ 1
        t_cw_right = t0r ^ t1r ^ bit
        corrections.append((s_cw, t_cw_left, t_cw_right))
        t_cw_keep = t_cw_right if bit else t_cw_left
        seed0 = _xor(keep0[0], s_cw) if t0 else keep0[0]
        seed1 = _xor(keep1[0], s_cw) if t1 else keep1[0]
        t0 = keep0[1] ^ (t0 & t_cw_keep)
        t1 = keep1[1] ^ (t1 & t_cw_keep)

    value0 = _convert(seed0, q)
    value1 = _convert(seed1, q)
    sign = -1 if t1 else 1
    output_correction = (sign * (beta - value0 + value1)) % q

    cw = tuple(corrections)
    return (
        DpfKey(0, domain_bits, q, root0, cw, output_correction),
        DpfKey(1, domain_bits, q, root1, cw, output_correction),
    )


def _walk(key: DpfKey, x: int) -> tuple[bytes, int]:
    """Follow the path for input x; returns (leaf seed, control bit)."""
    seed = key.root_seed
    t = key.party
    for level in range(key.domain_bits):
        bit = (x >> (key.domain_bits - 1 - level)) & 1
        s_cw, t_cw_left, t_cw_right = key.correction_words[level]
        sl, tl, sr, tr = _prg(seed)
        if t:
            sl, tl = _xor(sl, s_cw), tl ^ t_cw_left
            sr, tr = _xor(sr, s_cw), tr ^ t_cw_right
        seed, t = (sr, tr) if bit else (sl, tl)
    return seed, t


def dpf_eval(key: DpfKey, x: int) -> int:
    """This party's additive share of f_{α,β}(x)."""
    if not 0 <= x < (1 << key.domain_bits):
        raise ParameterError("x outside the domain")
    seed, t = _walk(key, x)
    share = (_convert(seed, key.q) + t * key.output_correction) % key.q
    return share if key.party == 0 else (-share) % key.q


def dpf_eval_full(key: DpfKey) -> list[int]:
    """Shares of f over the entire domain, sharing internal PRG calls."""
    if key.domain_bits > 22:
        raise ParameterError("full-domain evaluation capped at 2^22 leaves")
    frontier: list[tuple[bytes, int]] = [(key.root_seed, key.party)]
    for level in range(key.domain_bits):
        s_cw, t_cw_left, t_cw_right = key.correction_words[level]
        next_frontier: list[tuple[bytes, int]] = []
        for seed, t in frontier:
            sl, tl, sr, tr = _prg(seed)
            if t:
                sl, tl = _xor(sl, s_cw), tl ^ t_cw_left
                sr, tr = _xor(sr, s_cw), tr ^ t_cw_right
            next_frontier.append((sl, tl))
            next_frontier.append((sr, tr))
        frontier = next_frontier
    sign = 1 if key.party == 0 else -1
    return [
        (sign * (_convert(seed, key.q) + t * key.output_correction)) % key.q
        for seed, t in frontier
    ]
