"""BGI16-style linear sketch for validating secret-shared one-hot vectors.

This is the lightweight, *no-public-key-crypto* client validation used by
PRIO and Poplar ("efficient sketching techniques from [BGI16] to validate
a client's input in zero knowledge", Section 4.2) — the comparison system
of Figure 4 and the victim of the Figure 1 attacks.

Protocol (2 servers, inputs additively shared over Z_q):

1. Servers agree on public random r = (r_1..r_M)  (derived from a seed).
2. Each server k locally computes
       z_k  = ⟨[x]_k, r⟩,   z*_k = ⟨[x]_k, r∘r⟩,   σ_k = ⟨[x]_k, 1⟩.
3. The test needs z² (a cross-server product), so the *client* supplies a
   Beaver-style correlation: shares of a random mask A and of B = A².
   Servers publish w_k = z_k - A_k; with w = Σ w_k public,
       [z²]_k = k·w² + 2w·A_k + B_k          (k ∈ {0, 1})
   and they publish  s_k = [z²]_k - z*_k  and σ_k.
4. Accept iff  Σ_k s_k == 0  and  Σ_k σ_k == 1.

Correctness: for one-hot x with hot coordinate i, z = r_i, z* = r_i², so
z² - z* = 0; Σx = 1.  For any x not one-hot, z² - z* is a non-zero
polynomial in r and vanishes with probability <= 2/q (Schwartz–Zippel).

Security gap (the whole point): the published s_k are *unauthenticated*.
A corrupted server can flip its s_k to fail an honest client (Figure 1a),
and a client who reveals its mask A and one share to a colluding server
lets that server choose s_1 = -s_0, σ_1 = 1 - σ_0, admitting an illegal
input (Figure 1b, footnote 6).  Neither deviation is attributable.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass

from repro.errors import ParameterError
from repro.sharing.additive import share_additive
from repro.utils.rng import RNG, default_rng

__all__ = ["SketchClientPackage", "ServerSketchShare", "OneHotSketch"]


@dataclass(frozen=True)
class SketchClientPackage:
    """Everything a client sends one server: input share + correlation share."""

    x_share: tuple[int, ...]
    mask_share: int  # [A]_k
    mask_square_share: int  # [B]_k with B = A^2


@dataclass(frozen=True)
class ServerSketchShare:
    """One server's published sketch values for one client."""

    w: int  # z_k - A_k
    s: int  # [z^2]_k - z*_k   (needs w first; see evaluate())
    sigma: int  # ⟨[x]_k, 1⟩


class OneHotSketch:
    """The 2-server one-hot validity sketch."""

    def __init__(self, dimension: int, q: int) -> None:
        if dimension < 1:
            raise ParameterError("dimension must be >= 1")
        self.dimension = dimension
        self.q = q

    # Client side -----------------------------------------------------------

    def client_prepare(
        self, vector: list[int], rng: RNG | None = None
    ) -> tuple[SketchClientPackage, SketchClientPackage]:
        """Share the vector and the Beaver correlation for two servers.

        Note: no validity check here — a *dishonest* client may pass any
        vector; whether it gets caught is up to the sketch (it does,
        unless a server colludes).
        """
        if len(vector) != self.dimension:
            raise ParameterError("vector dimension mismatch")
        rng = default_rng(rng)
        q = self.q
        x0: list[int] = []
        x1: list[int] = []
        for value in vector:
            a, b = share_additive(value, 2, q, rng)
            x0.append(a)
            x1.append(b)
        mask = rng.field_element(q)
        a0, a1 = share_additive(mask, 2, q, rng)
        b0, b1 = share_additive(mask * mask % q, 2, q, rng)
        return (
            SketchClientPackage(tuple(x0), a0, b0),
            SketchClientPackage(tuple(x1), a1, b1),
        )

    # Public randomness -------------------------------------------------------

    def public_vector(self, seed: bytes) -> list[int]:
        """Derive the public random r from a joint seed (counter-mode hash)."""
        out: list[int] = []
        counter = 0
        width = (self.q.bit_length() + 7) // 8 + 16
        while len(out) < self.dimension:
            digest = hashlib.sha512(
                b"repro.sketch.r|" + seed + counter.to_bytes(4, "big")
            ).digest()
            out.append(int.from_bytes(digest[:width], "big") % self.q)
            counter += 1
        return out

    # Server side -------------------------------------------------------------

    def server_first_message(
        self, server_index: int, package: SketchClientPackage, r: list[int]
    ) -> int:
        """w_k = z_k - A_k (published first, to open the mask difference)."""
        q = self.q
        z = sum(x * ri for x, ri in zip(package.x_share, r)) % q
        return (z - package.mask_share) % q

    def server_second_message(
        self,
        server_index: int,
        package: SketchClientPackage,
        r: list[int],
        w_public: int,
    ) -> ServerSketchShare:
        """Publish s_k and sigma_k once w = Σ w_k is public."""
        q = self.q
        z_star = sum(x * ri * ri for x, ri in zip(package.x_share, r)) % q
        z_sq_share = (
            (w_public * w_public if server_index == 0 else 0)
            + 2 * w_public * package.mask_share
            + package.mask_square_share
        ) % q
        sigma = sum(package.x_share) % q
        w_k = self.server_first_message(server_index, package, r)
        return ServerSketchShare(w=w_k, s=(z_sq_share - z_star) % q, sigma=sigma)

    # Decision ----------------------------------------------------------------

    def accept(self, shares: tuple[ServerSketchShare, ServerSketchShare]) -> bool:
        """The public decision rule: Σ s == 0 and Σ σ == 1."""
        q = self.q
        return (shares[0].s + shares[1].s) % q == 0 and (
            shares[0].sigma + shares[1].sigma
        ) % q == 1

    def validate(
        self,
        packages: tuple[SketchClientPackage, SketchClientPackage],
        seed: bytes,
    ) -> bool:
        """Run the full honest two-server validation for one client."""
        r = self.public_vector(seed)
        w0 = self.server_first_message(0, packages[0], r)
        w1 = self.server_first_message(1, packages[1], r)
        w = (w0 + w1) % self.q
        s0 = self.server_second_message(0, packages[0], r, w)
        s1 = self.server_second_message(1, packages[1], r, w)
        return self.accept((s0, s1))
