"""A PRIO-style 2-server private aggregation system (Corrigan-Gibbs &
Boneh), the deployment model ΠBin upgrades.

Clients one-hot encode a categorical value, additively share it between
two servers, and attach the :mod:`repro.baselines.sketch` correlation.
Servers validate each client with the sketch, aggregate the shares of
accepted clients, add their own DP noise (each server adds an independent
Binomial — same accounting as ΠBin), and publish partial sums; the
analyst adds them.

Faithful properties (Table 2 row "PRIO"):

* privacy against one semi-honest server — shares reveal nothing,
* robustness against malformed clients *when both servers are honest*,
* central-model DP error.

Faithfully *missing* properties (what the paper attacks in Figure 1):

* no public auditability — the analyst sees only the final sums,
* a corrupted server can silently drop honest clients
  (:class:`CorruptPrioServer` with ``drop_clients``),
* a corrupted server colluding with a client can admit an illegal input
  (``collude_with``), and
* a corrupted server can bias its DP noise (``noise_bias``) — the
  "randomness as attack vector" problem.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field

from repro.baselines.sketch import OneHotSketch, ServerSketchShare, SketchClientPackage
from repro.dp.binomial import coins_for_privacy, sample_binomial
from repro.errors import ParameterError
from repro.utils.rng import RNG, SystemRNG, default_rng

__all__ = ["PrioClientSubmission", "PrioServer", "CorruptPrioServer", "PrioSystem", "PrioResult"]


@dataclass(frozen=True)
class PrioClientSubmission:
    """A client's two packages (one per server)."""

    client_id: str
    packages: tuple[SketchClientPackage, SketchClientPackage]


@dataclass
class PrioServer:
    """An honest PRIO server."""

    name: str
    index: int  # 0 or 1
    sketch: OneHotSketch
    nb: int
    rng: RNG = field(default_factory=SystemRNG)
    accepted: list[str] = field(default_factory=list)
    _shares: dict[str, SketchClientPackage] = field(default_factory=dict)

    def receive(self, submission: PrioClientSubmission) -> None:
        self._shares[submission.client_id] = submission.packages[self.index]

    # Validation --------------------------------------------------------------

    def first_message(self, client_id: str, r: list[int]) -> int:
        return self.sketch.server_first_message(self.index, self._shares[client_id], r)

    def second_message(self, client_id: str, r: list[int], w_public: int) -> ServerSketchShare:
        return self.sketch.server_second_message(
            self.index, self._shares[client_id], r, w_public
        )

    def record_verdict(self, client_id: str, accepted: bool) -> None:
        if accepted:
            self.accepted.append(client_id)

    # Aggregation -------------------------------------------------------------

    def partial_aggregate(self) -> list[int]:
        """Share-sum over accepted clients plus this server's own DP noise."""
        q = self.sketch.q
        dims = self.sketch.dimension
        totals = [0] * dims
        for client_id in self.accepted:
            package = self._shares[client_id]
            for m in range(dims):
                totals[m] = (totals[m] + package.x_share[m]) % q
        for m in range(dims):
            totals[m] = (totals[m] + sample_binomial(self.nb, self.rng)) % q
        return totals


@dataclass
class CorruptPrioServer(PrioServer):
    """An actively corrupted PRIO server (Figure 1 behaviours).

    * ``drop_clients`` — flips its sketch message so those (honest)
      clients fail validation: Figure 1(a).
    * ``collude_with`` — for those clients (who shared their mask A and
      their peer-share with this server out of band), it *computes the
      other server's expected messages* and publishes exactly the
      complement, forcing acceptance of an illegal input: Figure 1(b).
    * ``noise_bias`` — shifts its partial aggregate, hiding the shift in
      DP noise.

    None of these deviations is detectable by the honest server or the
    analyst: the published values remain plausible field elements.
    """

    drop_clients: frozenset[str] = frozenset()
    collude_with: dict[str, tuple[SketchClientPackage, int]] = field(default_factory=dict)
    noise_bias: int = 0

    def second_message(self, client_id: str, r, w_public) -> ServerSketchShare:
        honest = super().second_message(client_id, r, w_public)
        q = self.sketch.q
        if client_id in self.drop_clients:
            # Any perturbation of s makes Σs != 0: the client is rejected.
            return ServerSketchShare(w=honest.w, s=(honest.s + 1) % q, sigma=honest.sigma)
        if client_id in self.collude_with:
            # Knowing the peer package (leaked by the dishonest client),
            # emit the exact complement of the peer's honest messages.
            peer_package, peer_index = self.collude_with[client_id]
            peer = self.sketch.server_second_message(peer_index, peer_package, r, w_public)
            return ServerSketchShare(
                w=honest.w, s=(-peer.s) % q, sigma=(1 - peer.sigma) % q
            )
        return honest

    def partial_aggregate(self) -> list[int]:
        totals = super().partial_aggregate()
        q = self.sketch.q
        return [(t + self.noise_bias) % q for t in totals]


@dataclass(frozen=True)
class PrioResult:
    """The analyst's view after a PRIO run."""

    estimates: tuple[float, ...]
    accepted_clients: tuple[str, ...]
    raw: tuple[int, ...]


class PrioSystem:
    """Orchestrates clients, two servers and the analyst."""

    def __init__(
        self,
        dimension: int,
        q: int,
        epsilon: float,
        delta: float,
        *,
        servers: tuple[PrioServer, PrioServer] | None = None,
        rng: RNG | None = None,
    ) -> None:
        self.sketch = OneHotSketch(dimension, q)
        self.q = q
        self.nb = coins_for_privacy(epsilon, delta)
        self.rng = default_rng(rng)
        if servers is None:
            servers = (
                PrioServer("server-0", 0, self.sketch, self.nb),
                PrioServer("server-1", 1, self.sketch, self.nb),
            )
        if servers[0].index != 0 or servers[1].index != 1:
            raise ParameterError("server indices must be (0, 1)")
        self.servers = servers

    def submit(self, client_id: str, vector: list[int], rng: RNG | None = None) -> PrioClientSubmission:
        packages = self.sketch.client_prepare(vector, default_rng(rng) if rng else self.rng)
        return PrioClientSubmission(client_id, packages)

    def run(self, submissions: list[PrioClientSubmission]) -> PrioResult:
        """Validate every client, aggregate accepted ones, release."""
        for submission in submissions:
            for server in self.servers:
                server.receive(submission)

        for submission in submissions:
            seed = hashlib.sha256(b"prio-seed|" + submission.client_id.encode()).digest()
            r = self.sketch.public_vector(seed)
            w0 = self.servers[0].first_message(submission.client_id, r)
            w1 = self.servers[1].first_message(submission.client_id, r)
            w = (w0 + w1) % self.q
            s0 = self.servers[0].second_message(submission.client_id, r, w)
            s1 = self.servers[1].second_message(submission.client_id, r, w)
            verdict = self.sketch.accept((s0, s1))
            for server in self.servers:
                server.record_verdict(submission.client_id, verdict)

        partials = [server.partial_aggregate() for server in self.servers]
        dims = self.sketch.dimension
        raw = tuple(
            (partials[0][m] + partials[1][m]) % self.q for m in range(dims)
        )
        noise_mean = 2 * self.nb / 2.0  # two independent Binomial(nb, 1/2)
        estimates = tuple(value - noise_mean for value in raw)
        return PrioResult(
            estimates=estimates,
            accepted_clients=tuple(self.servers[0].accepted),
            raw=raw,
        )
