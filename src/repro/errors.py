"""Exception hierarchy for the ``repro`` library.

Protocol code raises rather than returning sentinel values: a failed
verification, a malformed message, or an aborted multi-party round is an
exceptional control-flow event that callers must consciously handle.

The hierarchy mirrors the trust boundaries of the paper:

* :class:`ParameterError` — misuse of the library API (bad arguments).
* :class:`CryptoError` — failures inside cryptographic primitives.
* :class:`VerificationError` — a proof or commitment check failed; carries
  enough context to name the misbehaving party (public auditability).
* :class:`ProtocolAbort` — a multi-party protocol stopped early (a party
  went silent or a commit-reveal check failed), per Algorithm 1 step 3.
"""

from __future__ import annotations

__all__ = [
    "ReproError",
    "ParameterError",
    "CryptoError",
    "EncodingError",
    "NotOnGroupError",
    "VerificationError",
    "CommitmentOpeningError",
    "ProofRejected",
    "ClientInputRejected",
    "ProverCheatingDetected",
    "SessionStateError",
    "ProtocolAbort",
    "EarlyExit",
]


class ReproError(Exception):
    """Base class for every exception raised by this library."""


class ParameterError(ReproError, ValueError):
    """An API was called with invalid or inconsistent parameters."""


class CryptoError(ReproError):
    """A cryptographic primitive failed or was misused."""


class EncodingError(CryptoError, ValueError):
    """A byte string could not be decoded into the expected object."""


class NotOnGroupError(CryptoError, ValueError):
    """A value is not a member of the expected prime-order group."""


class VerificationError(ReproError):
    """A verification check failed.

    Attributes
    ----------
    culprit:
        Identifier of the party whose message failed verification, when
        known.  Verifiable DP makes misbehaviour *publicly attributable*
        (Section 4.3, Line 3: "a public record of honest and dishonest
        clients"), so errors carry the name of the offender.
    """

    def __init__(self, message: str, *, culprit: str | None = None) -> None:
        super().__init__(message if culprit is None else f"{message} (culprit: {culprit})")
        self.culprit = culprit


class CommitmentOpeningError(VerificationError):
    """An opening (value, randomness) does not match its commitment."""


class ProofRejected(VerificationError):
    """A zero-knowledge proof failed verification."""


class ClientInputRejected(VerificationError):
    """A client's input failed the membership check x ∈ L (Line 3 of ΠBin)."""


class ProverCheatingDetected(VerificationError):
    """A prover's messages are inconsistent with its commitments.

    Raised by the public verifier when the Line 13 homomorphic check
    fails, or when a prover's private-coin commitment is not in L_Bit.
    """


class SessionStateError(ReproError):
    """A session method was called in the wrong phase.

    The :class:`repro.api.Session` engine is an explicit state machine
    (ENROLL → VALIDATE → COMMIT_COINS → MORRA → ADJUST → RELEASE); calls
    that would violate the protocol's ordering — submitting clients after
    coins are committed, say — fail loudly rather than corrupt the run.
    """


class ProtocolAbort(ReproError):
    """A multi-party protocol aborted before producing output."""

    def __init__(self, message: str, *, party: str | None = None) -> None:
        super().__init__(message if party is None else f"{message} (party: {party})")
        self.party = party


class EarlyExit(ProtocolAbort):
    """A participant stopped responding mid-protocol.

    The paper (Section 3.1) does not treat early exit as a security breach:
    it is trivially detected and the output is discarded.  We model it as a
    distinguished abort so callers can assert on exactly this behaviour.
    """
