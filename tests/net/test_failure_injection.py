"""Transport-level failure injection: a peer dying mid-phase.

tests/net's tamper tests cover *wrong bytes*; these cover *no bytes*: a
prover that goes silent between COMMIT_COINS and MORRA (its coin
commitments are in, its Morra contributions never come).  The front-end
must raise a :class:`ProtocolAbort` naming that prover within its
timeout — never hang — on both the blocking and the async serving paths,
and a multiplexed front-end must contain the damage to the dead peer's
session.
"""

import asyncio
import threading
import time

import pytest

from repro.api.queries import CountQuery
from repro.api.session import Session
from repro.crypto.serialization import encode_message
from repro.errors import ProtocolAbort
from repro.net.aio import (
    AsyncClientRunner,
    AsyncSocketTransport,
    SessionChannel,
    SessionMux,
    SessionSpec,
)
from repro.net.nodes import AnalystNode, ClientRunner, ServerNode
from repro.net.transport import InMemoryHub
from repro.utils.rng import SeededRNG

DELTA = 2**-10
QUERY = CountQuery(epsilon=1.0, delta=DELTA)


class _DieBeforeMorra(ServerNode):
    """Serves faithfully through COMMIT_COINS, then drops dead: the first
    Morra RPC never gets a reply and the node thread exits."""

    def _dispatch(self, method, parts):
        if method == "morra-sample":
            raise SystemExit
        return super()._dispatch(method, parts)


class TestSyncPeerDeath:
    def test_dead_prover_aborts_attributed_not_hangs(self):
        """In-memory topology, prover-1 dies between COMMIT_COINS and
        MORRA: AnalystNode raises ProtocolAbort(party='prover-1') within
        its recv timeout."""
        hub = InMemoryHub()
        seed = "die-sync"
        threads = []

        def server_main(node):
            try:
                node.run()
            except (ProtocolAbort, SystemExit):
                pass  # the survivor aborts once the analyst is gone

        for name, cls in [("prover-0", ServerNode), ("prover-1", _DieBeforeMorra)]:
            node = cls(hub.endpoint(name), SeededRNG(seed).fork(name), timeout=5.0)
            threads.append(
                threading.Thread(target=server_main, args=(node,), daemon=True)
            )
        runner = ClientRunner(
            hub.endpoint("clients"), QUERY, [1, 0, 1], rng=SeededRNG(seed), timeout=5.0
        )

        def clients_main():
            try:
                runner.run()
            except ProtocolAbort:
                pass  # the analyst dies before publishing a release

        threads.append(threading.Thread(target=clients_main, daemon=True))
        for thread in threads:
            thread.start()
        analyst = AnalystNode(
            QUERY,
            hub.endpoint("analyst"),
            ["prover-0", "prover-1"],
            group="p64-sim",
            nb_override=16,
            rng=SeededRNG(seed),
            timeout=2.0,
        )
        start = time.monotonic()
        with pytest.raises(ProtocolAbort) as err:
            analyst.run()
        assert err.value.party == "prover-1"
        assert time.monotonic() - start < 20.0

    def test_dead_prover_aborts_attributed_over_sockets(self):
        """Same death over TCP: the closed socket is attributed to the
        dead prover immediately (no timeout wait)."""
        from repro.net.transport import SocketTransport

        seed = "die-socket"
        listener = SocketTransport.listen("analyst")
        threads = []

        def server_main(name, cls):
            transport = SocketTransport.connect(name, "analyst", port=listener.port)
            try:
                cls(transport, SeededRNG(seed).fork(name), timeout=10.0).run()
            except (ProtocolAbort, SystemExit):
                # The dying prover exits with its socket closed, as a
                # crashed process would; the survivor aborts once the
                # analyst hangs up.
                transport.close()

        for name, cls in [("prover-0", ServerNode), ("prover-1", _DieBeforeMorra)]:
            threads.append(
                threading.Thread(target=server_main, args=(name, cls), daemon=True)
            )

        def clients_main():
            transport = SocketTransport.connect("clients", "analyst", port=listener.port)
            try:
                ClientRunner(
                    transport, QUERY, [1, 0, 1], rng=SeededRNG(seed), timeout=10.0
                ).run()
            except ProtocolAbort:
                pass  # the analyst dies before publishing a release

        threads.append(threading.Thread(target=clients_main, daemon=True))
        for thread in threads:
            thread.start()
        listener.accept(3, 10.0)
        analyst = AnalystNode(
            QUERY,
            listener,
            ["prover-0", "prover-1"],
            group="p64-sim",
            nb_override=16,
            rng=SeededRNG(seed),
            timeout=10.0,
        )
        start = time.monotonic()
        with pytest.raises(ProtocolAbort) as err:
            analyst.run()
        assert err.value.party == "prover-1"
        # Attribution came from the closed socket, not a timeout expiry.
        assert time.monotonic() - start < 8.0
        listener.close()


class TestAsyncPeerDeath:
    def test_dead_session_contained_others_release(self):
        """Multiplexed front-end, N=2: session 1's prover-1 dies between
        COMMIT_COINS and MORRA.  Session 1 ends in an attributed
        ProtocolAbort; session 0 still releases byte-identical to its
        solo run."""
        run = "die-aio"
        servers = ["prover-0", "prover-1"]

        def seed(s):
            return f"{run}/s{s}"

        async def main():
            listener = await AsyncSocketTransport.listen("analyst")
            loop = asyncio.get_running_loop()
            transports = []
            tasks = []
            for name in servers:
                transport = await AsyncSocketTransport.connect(
                    name, "analyst", port=listener.port
                )
                transports.append(transport)
                for s in range(2):
                    cls = (
                        _DieBeforeMorra
                        if (s == 1 and name == "prover-1")
                        else ServerNode
                    )
                    node = cls(
                        SessionChannel(transport, s, loop),
                        SeededRNG(seed(s)).fork(name),
                        timeout=10.0,
                    )
                    tasks.append(loop.run_in_executor(None, node.run))
            clients = await AsyncSocketTransport.connect(
                "clients", "analyst", port=listener.port
            )
            transports.append(clients)
            runner = AsyncClientRunner(
                clients,
                {s: (QUERY, [1, 0, 1], SeededRNG(seed(s))) for s in range(2)},
                timeout=10.0,
            )
            await listener.accept(3, 10.0)
            mux = SessionMux(
                [
                    SessionSpec(
                        QUERY,
                        rng=SeededRNG(seed(s)),
                        group="p64-sim",
                        nb_override=16,
                    )
                    for s in range(2)
                ],
                listener,
                servers,
                timeout=3.0,
            )
            await asyncio.gather(mux.run(), runner.run(), return_exceptions=True)
            await asyncio.gather(*tasks, return_exceptions=True)
            for transport in transports:
                await transport.aclose()
            await listener.aclose()
            return mux

        start = time.monotonic()
        mux = asyncio.run(main())
        assert time.monotonic() - start < 60.0

        # The dead peer's session aborted, attributed.
        assert isinstance(mux.errors[1], ProtocolAbort)
        assert mux.errors[1].party == "prover-1"
        assert mux.results[1] is None

        # The healthy session is untouched: byte-identical to solo.
        assert mux.errors[0] is None, mux.errors[0]
        release = mux.results[0].release
        assert release.accepted
        solo = Session(
            QUERY,
            num_provers=2,
            group="p64-sim",
            nb_override=16,
            rng=SeededRNG(seed(0)),
        )
        solo.submit([1, 0, 1])
        assert encode_message(solo.release().release) == encode_message(release)
