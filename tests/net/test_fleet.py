"""Fleet serving: placement, byte-identity, crash restart, drain, stealing.

The fleet layer's contract, pinned end to end:

* every session served through the fleet releases byte-identical to the
  seeded in-process :class:`repro.api.Session` — including the
  ``shards``-per-session composition;
* a front-end killed mid-session costs an *attributed* ``crashed``
  outcome (party = the dead worker), never a hang, and the dispatcher
  restarts the worker and keeps serving;
* drain finishes everything already admitted and admits nothing new;
* a hot front-end's queued sessions are stolen onto an idle one.
"""

import time

import pytest

from repro.api.queries import CountQuery
from repro.api.session import Session
from repro.crypto.serialization import encode_message
from repro.errors import ParameterError
from repro.net.fleet import (
    FleetConfig,
    FleetDispatcher,
    SessionRequest,
    run_fleet,
    session_seed,
    session_values,
)
from repro.utils.rng import SeededRNG

DELTA = 2**-10
QUERY = CountQuery(epsilon=1.0, delta=DELTA)


def _solo_frame(request, outcome, num_servers=2, group="p64-sim", nb=16):
    solo = Session(
        request.query,
        num_provers=num_servers,
        group=group,
        nb_override=nb,
        chunk_size=outcome.chunk_size,
        rng=SeededRNG(request.seed),
    )
    solo.submit(request.values)
    return encode_message(solo.release().release)


class TestFleetServing:
    def test_fleet_releases_byte_identical_across_frontends(self):
        """4 sessions over 2 front-ends x capacity 2: every release
        byte-identical to its solo seeded run, both front-ends used."""
        outcome = run_fleet(
            QUERY,
            [1, 0, 1, 1],
            sessions=4,
            frontends=2,
            capacity=2,
            num_servers=2,
            group="p64-sim",
            nb_override=16,
            seed="fleet-bytes",
            timeout=60.0,
        )
        assert outcome["released"] == 4
        assert outcome["crashed"] == 0 and outcome["aborted"] == 0
        assert outcome["accepted"] and outcome["byte_identical"]
        assert outcome["frontends_used"] == ["fe-0", "fe-1"]
        assert all(
            row["byte_identical"] for row in outcome["session_rows"]
        ), outcome["session_rows"]

    def test_fleet_sharded_composition_byte_identical(self):
        """The --fleet --shards composition: every session fans its
        verification across 2 shard workers and still releases
        byte-identical (at the pinned effective chunk size)."""
        outcome = run_fleet(
            QUERY,
            [1, 0, 1, 1],
            sessions=3,
            frontends=2,
            capacity=2,
            shards=2,
            num_servers=2,
            group="p64-sim",
            nb_override=16,
            seed="fleet-shards",
            timeout=60.0,
        )
        assert outcome["released"] == 3
        assert outcome["accepted"] and outcome["byte_identical"]
        assert len(outcome["frontends_used"]) == 2

    def test_config_file_round_trip_and_unknown_keys(self, tmp_path):
        path = tmp_path / "fleet.json"
        path.write_text('{"frontends": 3, "capacity": 1, "shards": 2}')
        config = FleetConfig.from_file(str(path))
        assert (config.frontends, config.capacity, config.shards) == (3, 1, 2)
        path.write_text('{"frontends": 3, "workers": 9}')
        with pytest.raises(ParameterError, match="workers"):
            FleetConfig.from_file(str(path))

    def test_config_validation(self):
        with pytest.raises(ParameterError):
            FleetConfig(frontends=0)
        with pytest.raises(ParameterError):
            FleetConfig(capacity=0)
        with pytest.raises(ParameterError):
            FleetConfig(shards=-1)


class TestFleetLifecycle:
    def _wait_for(self, predicate, deadline_s=30.0, what="condition"):
        deadline = time.monotonic() + deadline_s
        while time.monotonic() < deadline:
            if predicate():
                return
            time.sleep(0.02)
        raise AssertionError(f"timed out waiting for {what}")

    def test_killed_frontend_attributed_restarted_survivors_identical(self):
        """Kill fe-0 with a session in flight: the session becomes an
        attributed ``crashed`` outcome (not a hang), the dispatcher
        respawns fe-0 and serves a new request through it, and fe-1's
        concurrent session stays byte-identical."""
        config = FleetConfig(
            frontends=2,
            capacity=1,
            num_servers=2,
            nb_override=16,
            timeout=30.0,
            health_interval=0.05,
        )
        victim = SessionRequest(
            0, QUERY, [1, 0, 1], seed="fleet-kill/s0", reply_delay=0.5
        )
        survivor = SessionRequest(1, QUERY, [0, 1, 1], seed="fleet-kill/s1")
        retry = SessionRequest(2, QUERY, [1, 1, 0], seed="fleet-kill/s2")
        start = time.monotonic()
        with FleetDispatcher(config) as dispatcher:
            dispatcher.place(victim, "fe-0")
            dispatcher.place(survivor, "fe-1")
            # The victim's 0.5 s-per-RPC session is provably in flight
            # once fe-0's health stats report it.
            self._wait_for(
                lambda: dispatcher.worker_stats()
                .get("fe-0", {})
                .get("in_flight", 0)
                >= 1,
                what="fe-0 to report the session in flight",
            )
            dispatcher.workers["fe-0"].process.kill()
            assert dispatcher.wait({0, 1}, timeout=60.0), dispatcher.outcomes
            crashed = dispatcher.outcomes[0]
            assert crashed.status == "crashed"
            assert crashed.party == "fe-0"
            assert crashed.frontend == "fe-0"
            # Restarted — and the respawned worker actually serves.
            self._wait_for(
                lambda: dispatcher.restarts.get("fe-0", 0) >= 1,
                what="fe-0 restart",
            )
            dispatcher.place(retry, "fe-0")
            assert dispatcher.wait({2}, timeout=60.0), dispatcher.outcomes
            assert dispatcher.outcomes[2].status == "released"
            # No hangs anywhere in the story.
            assert time.monotonic() - start < 90.0
            # Survivor and retry releases byte-identical to solo runs.
            for request in (survivor, retry):
                outcome = dispatcher.outcomes[request.request_id]
                assert outcome.status == "released"
                assert outcome.release_frame == _solo_frame(request, outcome)

    def test_drain_finishes_in_flight_and_admits_nothing_new(self):
        """Drain with one session running and one queued: both finish
        and release; a post-drain submit is refused."""
        config = FleetConfig(
            frontends=1,
            capacity=1,
            num_servers=2,
            nb_override=16,
            timeout=30.0,
            health_interval=0.05,
        )
        running = SessionRequest(
            0, QUERY, [1, 0, 1], seed="fleet-drain/s0", reply_delay=0.15
        )
        queued = SessionRequest(1, QUERY, [0, 1, 1], seed="fleet-drain/s1")
        with FleetDispatcher(config) as dispatcher:
            dispatcher.submit(running)
            dispatcher.submit(queued)
            assert dispatcher.drain(timeout=60.0)
            assert dispatcher.outcomes[0].status == "released"
            assert dispatcher.outcomes[1].status == "released"
            with pytest.raises(ParameterError, match="draining"):
                dispatcher.submit(
                    SessionRequest(2, QUERY, [1, 1], seed="fleet-drain/s2")
                )
            for request in (running, queued):
                outcome = dispatcher.outcomes[request.request_id]
                assert outcome.release_frame == _solo_frame(request, outcome)

    def test_hot_frontend_sessions_stolen_onto_idle_one(self):
        """Pile 4 sessions onto fe-0 (capacity 1, slow RPCs) while fe-1
        idles: the dispatcher steals queued sessions across, some land
        on fe-1, and everything still releases byte-identically."""
        config = FleetConfig(
            frontends=2,
            capacity=1,
            num_servers=2,
            nb_override=16,
            timeout=60.0,
            health_interval=0.05,
        )
        requests = [
            SessionRequest(
                i,
                QUERY,
                session_values([1, 0, 1], i),
                seed=session_seed("fleet-steal", i),
                reply_delay=0.25,
            )
            for i in range(4)
        ]
        with FleetDispatcher(config) as dispatcher:
            for request in requests:
                dispatcher.place(request, "fe-0")
            assert dispatcher.wait(timeout=120.0), dispatcher.outcomes
            assert dispatcher.stolen >= 1
            frontends = {o.frontend for o in dispatcher.outcomes.values()}
            assert "fe-1" in frontends, dispatcher.outcomes
            for request in requests:
                outcome = dispatcher.outcomes[request.request_id]
                assert outcome.status == "released"
                assert outcome.release_frame == _solo_frame(request, outcome)
