"""Metrics: instruments, the /metrics endpoint, and the live-fleet ledger.

The observability contract, pinned end to end:

* the instruments render valid Prometheus text (counters reject
  negative increments, histograms emit cumulative ``le`` buckets plus
  ``+Inf``/``_sum``/``_count``, labels escape cleanly);
* :class:`~repro.api.engine.ProtocolEngine` notifies phase observers at
  every transition with the elapsed wall time, and accumulates the same
  numbers as ``phase:*`` stage entries;
* a live fleet scrape balances the books — counters only go up,
  ``repro_sessions_in_flight`` returns to 0 after a drain, and a killed
  front-end increments ``repro_sessions_crashed_total`` — so an
  operator watching ``/metrics`` sees exactly what the dispatcher did.
"""

import time
import urllib.error
import urllib.request

import pytest

from repro.api.engine import add_phase_observer, remove_phase_observer
from repro.api.queries import CountQuery
from repro.api.session import Session
from repro.errors import ParameterError
from repro.net.fleet import FleetConfig, FleetDispatcher, SessionRequest
from repro.net.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    MetricsServer,
    ServingMetrics,
)
from repro.utils.rng import SeededRNG

QUERY = CountQuery(epsilon=1.0, delta=2**-10)


def _scrape(port: int) -> dict[str, float]:
    """GET /metrics and parse the sample lines into {series: value}."""
    with urllib.request.urlopen(
        f"http://127.0.0.1:{port}/metrics", timeout=10.0
    ) as response:
        text = response.read().decode("utf-8")
    samples = {}
    for line in text.splitlines():
        if not line or line.startswith("#"):
            continue
        series, value = line.rsplit(" ", 1)
        samples[series] = float(value)
    return samples


class TestInstruments:
    def test_counter_renders_and_rejects_negative(self):
        counter = Counter("jobs_total", "Jobs", labelnames=("kind",))
        counter.inc(kind="a")
        counter.inc(2, kind="b")
        assert counter.value(kind="a") == 1
        assert counter.value(kind="b") == 2
        rendered = counter.render()
        assert "# TYPE jobs_total counter" in rendered
        assert 'jobs_total{kind="a"} 1' in rendered
        assert 'jobs_total{kind="b"} 2' in rendered
        with pytest.raises(ParameterError, match="only go up"):
            counter.inc(-1, kind="a")

    def test_label_set_must_match(self):
        counter = Counter("jobs_total", "Jobs", labelnames=("kind",))
        with pytest.raises(ParameterError, match="takes labels"):
            counter.inc(color="red")
        with pytest.raises(ParameterError, match="takes labels"):
            counter.inc()

    def test_gauge_goes_both_ways(self):
        gauge = Gauge("depth", "Depth")
        gauge.inc(3)
        gauge.dec()
        assert gauge.value() == 2
        gauge.set(0)
        assert gauge.value() == 0

    def test_histogram_cumulative_buckets(self):
        hist = Histogram("lat_seconds", "Latency", buckets=(0.1, 1.0, 10.0))
        for value in (0.05, 0.5, 0.5, 5.0):
            hist.observe(value)
        rendered = hist.render()
        assert 'lat_seconds_bucket{le="0.1"} 1' in rendered
        assert 'lat_seconds_bucket{le="1"} 3' in rendered
        assert 'lat_seconds_bucket{le="10"} 4' in rendered
        assert 'lat_seconds_bucket{le="+Inf"} 4' in rendered
        assert "lat_seconds_count 4" in rendered
        assert "lat_seconds_sum 6.05" in rendered

    def test_registry_idempotent_but_type_safe(self):
        registry = MetricsRegistry()
        first = registry.counter("a_total", "A")
        assert registry.counter("a_total", "A") is first
        with pytest.raises(ParameterError, match="different type"):
            registry.gauge("a_total", "A")
        with pytest.raises(ParameterError, match="different type"):
            registry.counter("a_total", "A", labelnames=("x",))

    def test_label_values_escaped(self):
        counter = Counter("odd_total", "Odd", labelnames=("name",))
        counter.inc(name='he said "hi"\n')
        line = counter.render()[-1]
        assert '\\"hi\\"' in line and "\\n" in line


class TestServingMetricsLedger:
    def test_admit_finish_balances_in_flight(self):
        metrics = ServingMetrics()
        metrics.session_admitted(3)
        assert metrics.in_flight.value() == 3
        metrics.session_finished("released", elapsed_s=0.5)
        metrics.session_finished("aborted")
        metrics.session_finished("crashed")
        assert metrics.in_flight.value() == 0
        assert metrics.completed.value() == 1
        assert metrics.aborted.value() == 1
        assert metrics.crashed.value() == 1

    def test_unknown_status_rejected(self):
        metrics = ServingMetrics()
        metrics.session_admitted()
        with pytest.raises(ParameterError, match="unknown session outcome"):
            metrics.session_finished("vanished")

    def test_stage_entries_feed_phase_histogram(self):
        metrics = ServingMetrics()
        metrics.observe_stages({"phase:morra": 0.2, "sigma_verify": 1.0})
        rendered = metrics.registry.render()
        assert 'repro_engine_phase_seconds_count{phase="morra"} 1' in rendered
        assert "sigma_verify" not in rendered


class TestMetricsServer:
    def test_scrape_and_404(self):
        registry = MetricsRegistry()
        registry.counter("ticks_total", "Ticks").inc(7)
        server = MetricsServer(registry)
        try:
            samples = _scrape(server.port)
            assert samples["ticks_total"] == 7
            with pytest.raises(urllib.error.HTTPError):
                urllib.request.urlopen(
                    f"http://127.0.0.1:{server.port}/nope", timeout=10.0
                )
        finally:
            server.close()


class TestEnginePhaseObservers:
    def test_observer_sees_every_transition_and_stages_match(self):
        seen = []

        def observer(previous, new, elapsed):
            seen.append((previous.value, new.value, elapsed))

        add_phase_observer(observer)
        try:
            session = Session(
                QUERY,
                num_provers=2,
                group="p64-sim",
                nb_override=16,
                rng=SeededRNG("metrics-phases"),
            )
            session.submit([1, 0, 1])
            result = session.release()
        finally:
            remove_phase_observer(observer)
        # enroll → validate → commit-coins → morra → (adjust → morra)* →
        # adjust → release → done; every phase is visited, every
        # transition carries a non-negative elapsed time.
        assert seen[0][:2] == ("enroll", "validate")
        assert seen[-1][:2] == ("release", "done")
        visited = {previous for previous, _, _ in seen}
        assert visited == {
            "enroll",
            "validate",
            "commit-coins",
            "morra",
            "adjust",
            "release",
        }
        assert all(elapsed >= 0 for _, _, elapsed in seen)
        stages = result.results[0].timer.stages
        stage_keys = {k for k in stages if k.startswith("phase:")}
        assert stage_keys == {f"phase:{name}" for name in visited}

    def test_remove_unregistered_observer_is_noop(self):
        remove_phase_observer(lambda *a: None)


class TestLiveFleetScrape:
    def _wait_for(self, predicate, deadline_s=30.0, what="condition"):
        deadline = time.monotonic() + deadline_s
        while time.monotonic() < deadline:
            if predicate():
                return
            time.sleep(0.02)
        raise AssertionError(f"timed out waiting for {what}")

    def test_two_frontend_fleet_scrape_counters_monotone_drain_zeroes(self):
        """Serve 4 sessions over a live 2-front-end fleet while scraping
        concurrently: admitted/completed only go up between scrapes, the
        per-phase histograms fill, and after the drain the in-flight
        gauge reads exactly 0 with completed == admitted == 4."""
        metrics = ServingMetrics()
        server = MetricsServer(metrics.registry)
        config = FleetConfig(
            frontends=2,
            capacity=2,
            num_servers=2,
            nb_override=16,
            timeout=60.0,
            health_interval=0.05,
        )
        requests = [
            SessionRequest(
                i, QUERY, [1, 0, 1], seed=f"metrics-fleet/s{i}", reply_delay=0.05
            )
            for i in range(4)
        ]
        try:
            with FleetDispatcher(config, metrics=metrics) as dispatcher:
                previous = _scrape(server.port)
                assert previous["repro_sessions_admitted_total"] == 0
                for request in requests:
                    dispatcher.submit(request)
                    current = _scrape(server.port)
                    assert (
                        current["repro_sessions_admitted_total"]
                        >= previous["repro_sessions_admitted_total"]
                    )
                    assert (
                        current["repro_sessions_completed_total"]
                        >= previous["repro_sessions_completed_total"]
                    )
                    previous = current
                assert dispatcher.drain(timeout=60.0)
                final = _scrape(server.port)
            assert final["repro_sessions_admitted_total"] == 4
            assert final["repro_sessions_completed_total"] == 4
            assert final["repro_sessions_crashed_total"] == 0
            assert final["repro_sessions_in_flight"] == 0
            assert final['repro_engine_phase_seconds_count{phase="morra"}'] == 4
            assert final["repro_session_seconds_count"] == 4
        finally:
            server.close()

    def test_killed_frontend_increments_crashed_and_restarts(self):
        """Kill fe-0 with a slow session provably in flight: the scrape
        shows crashed == 1, a restart for fe-0, and the ledger still
        balances (in-flight back to 0)."""
        metrics = ServingMetrics()
        server = MetricsServer(metrics.registry)
        config = FleetConfig(
            frontends=2,
            capacity=1,
            num_servers=2,
            nb_override=16,
            timeout=30.0,
            health_interval=0.05,
        )
        victim = SessionRequest(
            0, QUERY, [1, 0, 1], seed="metrics-kill/s0", reply_delay=0.5
        )
        try:
            with FleetDispatcher(config, metrics=metrics) as dispatcher:
                dispatcher.place(victim, "fe-0")
                self._wait_for(
                    lambda: dispatcher.worker_stats()
                    .get("fe-0", {})
                    .get("in_flight", 0)
                    >= 1,
                    what="fe-0 to report the session in flight",
                )
                dispatcher.workers["fe-0"].process.kill()
                assert dispatcher.wait({0}, timeout=60.0), dispatcher.outcomes
                self._wait_for(
                    lambda: dispatcher.restarts.get("fe-0", 0) >= 1,
                    what="fe-0 restart",
                )
                samples = _scrape(server.port)
            assert samples["repro_sessions_crashed_total"] == 1
            assert samples["repro_sessions_completed_total"] == 0
            assert samples["repro_sessions_in_flight"] == 0
            assert samples['repro_frontend_restarts_total{frontend="fe-0"}'] >= 1
        finally:
            server.close()
