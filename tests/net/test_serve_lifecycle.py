"""Serving-layer lifecycle regressions: startup leaks and teardown stalls.

Bugs fixed in the serve layer, pinned here:

* a failed ``accept`` in ``_start_socket`` used to leak every started
  child process *and* the listening socket — the cleanup closure was
  only returned on success;
* peer shutdown used to be serial with a full protocol-timeout recv per
  peer, so one dead peer stalled teardown by timeout × remaining peers,
  and the bare ``except ReproError: pass`` discarded which peer was
  dead;
* ``repro serve`` used to exit the same way for a protocol abort and
  dead infrastructure, so a supervisor (the fleet dispatcher, CI, an
  init system) could not tell "a party cheated/went silent" from "the
  serving substrate broke" — now they are distinct exit codes with the
  attributed party on stderr.
"""

import threading
import time

import pytest

from repro.api.queries import CountQuery
from repro.cli import _serve_parser
from repro.core.messages import AuditRecord
from repro.errors import ParameterError, ProtocolAbort
from repro.net import serve
from repro.net.nodes import shutdown_peers
from repro.net.transport import InMemoryHub
from repro.net.wire import decode_control, encode_reply

DELTA = 2**-10


class _RecordingContext:
    """Wraps a multiprocessing context so the test can see every child
    the serve layer spawns (they are otherwise unreachable after a
    startup failure — which is exactly the bug)."""

    def __init__(self, context, spawned):
        self._context = context
        self._spawned = spawned

    def Process(self, *args, **kwargs):
        process = self._context.Process(*args, **kwargs)
        self._spawned.append(process)
        return process


class TestFailedStartupLeaks:
    def test_failed_socket_accept_terminates_children(self, monkeypatch):
        """Children that never handshake force an accept timeout; the
        startup must terminate every started child and close the
        listener instead of leaking them."""

        def never_connects(*args, **kwargs):  # runs in the forked child
            time.sleep(120)

        monkeypatch.setattr(serve, "_server_main_socket", never_connects)
        monkeypatch.setattr(serve, "_clients_main_socket", never_connects)
        spawned = []
        real_get_context = serve.get_context
        monkeypatch.setattr(
            serve,
            "get_context",
            lambda kind: _RecordingContext(real_get_context(kind), spawned),
        )

        query = CountQuery(epsilon=1.0, delta=DELTA)
        start = time.monotonic()
        with pytest.raises(ProtocolAbort):
            serve._start_socket(
                query,
                [1, 0],
                ["prover-0", "prover-1"],
                [],
                "leak",
                "127.0.0.1",
                0,
                1.0,
            )
        assert time.monotonic() - start < 30.0
        assert len(spawned) == 3  # 2 servers + 1 client runner
        for process in spawned:
            process.join(timeout=10.0)
        assert all(not process.is_alive() for process in spawned), (
            "failed accept leaked live children"
        )

    def test_successful_socket_startup_unaffected(self):
        """The guarded startup still hands back a working transport and
        cleanup on the happy path (exercised fully by run_distributed_
        session elsewhere; here just the guard's pass-through)."""
        outcome = serve.run_distributed_session(
            CountQuery(epsilon=1.0, delta=DELTA),
            [1, 0, 1],
            transport="socket",
            num_servers=1,
            group="p64-sim",
            nb_override=16,
            seed="lifecycle",
            timeout=60.0,
        )
        assert outcome["accepted"] and outcome["byte_identical"]


class TestConcurrentShutdown:
    def _hub_with_peers(self, alive, dead):
        hub = InMemoryHub()
        analyst = hub.endpoint("analyst")
        threads = []
        for name in alive:
            endpoint = hub.endpoint(name)

            def ack(endpoint=endpoint):
                frame = endpoint.recv("analyst", timeout=10.0)
                kind, _ = decode_control(frame)
                assert kind == "shutdown"
                endpoint.send("analyst", encode_reply())

            threads.append(threading.Thread(target=ack, daemon=True))
        for name in dead:
            hub.endpoint(name)  # registered, never answers
        for thread in threads:
            thread.start()
        return analyst, threads

    def test_one_dead_peer_costs_grace_not_timeout_per_peer(self):
        """Old behavior: timeout recv per dead peer, serially — here
        60 s × 1 dead peer before the last healthy ack.  New behavior:
        every shutdown is sent first, acks collect under one short
        shared grace, and the dead peer is named in the audit."""
        analyst, threads = self._hub_with_peers(
            alive=["prover-0", "prover-2"], dead=["prover-1"]
        )
        audit = AuditRecord()
        start = time.monotonic()
        unresponsive = shutdown_peers(
            analyst,
            ["prover-0", "prover-1", "prover-2"],
            60.0,
            audit,
            grace=0.5,
        )
        elapsed = time.monotonic() - start
        assert unresponsive == ["prover-1"]
        assert elapsed < 10.0, f"teardown stalled {elapsed:.1f}s"
        assert any(
            "unresponsive at shutdown" in note and "prover-1" in note
            for note in audit.notes
        ), audit.notes
        for thread in threads:
            thread.join(timeout=10.0)

    def test_all_healthy_peers_ack_and_nothing_is_noted(self):
        analyst, threads = self._hub_with_peers(
            alive=["prover-0", "prover-1"], dead=[]
        )
        audit = AuditRecord()
        unresponsive = shutdown_peers(
            analyst, ["prover-0", "prover-1"], 60.0, audit, grace=5.0
        )
        assert unresponsive == []
        assert audit.notes == []
        for thread in threads:
            thread.join(timeout=10.0)


class TestExitCodes:
    """`repro serve` exit codes: a supervisor must be able to tell a
    protocol abort (restartable policy decision) from dead
    infrastructure (restart the substrate) without parsing stderr —
    though stderr does name the attributed party."""

    def _args(self, *extra):
        return _serve_parser().parse_args(list(extra))

    def test_protocol_abort_exits_3_with_party_on_stderr(
        self, monkeypatch, capsys
    ):
        def abort(*args, **kwargs):
            raise ProtocolAbort("prover went silent mid-Morra", party="prover-1")

        monkeypatch.setattr(serve, "run_distributed_session", abort)
        code = serve.main(self._args())
        assert code == serve.EXIT_PROTOCOL_ABORT == 3
        err = capsys.readouterr().err
        assert "protocol abort" in err
        assert "prover-1" in err

    def test_unattributed_abort_still_exits_3(self, monkeypatch, capsys):
        def abort(*args, **kwargs):
            raise ProtocolAbort("timed out accepting peers")

        monkeypatch.setattr(serve, "run_async_sessions", abort)
        code = serve.main(self._args("--async"))
        assert code == serve.EXIT_PROTOCOL_ABORT
        assert "unattributed" in capsys.readouterr().err

    def test_infrastructure_crash_exits_4(self, monkeypatch, capsys):
        def crash(*args, **kwargs):
            raise OSError("address already in use")

        monkeypatch.setattr(serve, "run_fleet", crash)
        code = serve.main(self._args("--fleet"))
        assert code == serve.EXIT_INFRA_CRASH == 4
        err = capsys.readouterr().err
        assert "infrastructure crash" in err
        assert "address already in use" in err

    def test_usage_error_exits_2(self, monkeypatch, capsys):
        def reject(*args, **kwargs):
            raise ParameterError("shards must be >= 0")

        monkeypatch.setattr(serve, "run_distributed_session", reject)
        code = serve.main(self._args())
        assert code == 2
        assert "usage error" in capsys.readouterr().err

    def test_abort_and_crash_codes_are_distinct_and_nonzero(self):
        assert serve.EXIT_PROTOCOL_ABORT != serve.EXIT_INFRA_CRASH
        assert serve.EXIT_PROTOCOL_ABORT not in (0, 1, 2)
        assert serve.EXIT_INFRA_CRASH not in (0, 1, 2)
