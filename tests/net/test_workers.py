"""Parallel verification workers: correctness, pinpointing, transcripts."""

import pytest

from repro.core.params import setup
from repro.core.prover import NonBitCoinProver, Prover, coin_transcript
from repro.crypto.serialization import decode_message, encode_message
from repro.net.workers import (
    VerificationPool,
    advance_coin_transcript,
    advance_coin_transcript_frame,
    verify_coin_frame,
)
from repro.utils.rng import SeededRNG

CONTEXT = b"workers-test"


@pytest.fixture(scope="module")
def params():
    return setup(1.0, 2**-10, num_provers=2, group="p64-sim", nb_override=64)


def _coin_frames(params, names=("prover-0", "prover-1"), cheat=()):
    frames = []
    for name in names:
        cls = NonBitCoinProver if name in cheat else Prover
        prover = cls(name, params, SeededRNG(name))
        frames.append(encode_message(prover.commit_coins(CONTEXT)))
    return frames


def _chunked_frames(params, chunks=4, rows=16, cheat_chunk=None):
    prover = Prover("prover-0", params, SeededRNG("chunked"))
    prover.begin_coin_stream(CONTEXT)
    frames = []
    for index in range(chunks):
        message = prover.commit_coin_chunk(rows)
        frame = encode_message(message)
        if index == cheat_chunk:
            frame = frame[:-1] + bytes([frame[-1] ^ 0x01])
        frames.append(frame)
        prover.absorb_public_bits([[0]] * rows)
    return frames


class TestSingleFrame:
    def test_honest_frame_verifies(self, params):
        frame = _coin_frames(params, names=("prover-0",))[0]
        prover_id, ok, note = verify_coin_frame(params, frame, CONTEXT)
        assert (prover_id, ok, note) == ("prover-0", True, None)

    def test_cheating_prover_pinpointed(self, params):
        frame = _coin_frames(params, names=("prover-0",), cheat=("prover-0",))[0]
        prover_id, ok, note = verify_coin_frame(params, frame, CONTEXT)
        assert prover_id == "prover-0" and not ok
        assert "coin proof rejected at coin" in note

    def test_advance_matches_verification_transcript(self, params):
        """Fast-forward must reproduce verify_bit's transcript exactly:
        a chunk verified after an advanced prefix equals a chunk verified
        after a verified prefix."""
        frames = _chunked_frames(params, chunks=2, rows=8)
        first = decode_message(params.group, frames[0])
        advanced = coin_transcript(params, "prover-0", CONTEXT)
        advance_coin_transcript(params, advanced, first)

        verified = coin_transcript(params, "prover-0", CONTEXT)
        from repro.crypto.sigma.or_bit import verify_bit

        for c_row, p_row in zip(first.commitments, first.proofs):
            for commitment, proof in zip(c_row, p_row):
                verify_bit(params.pedersen, commitment, proof, verified)
        assert advanced.challenge_bytes("probe", 16) == verified.challenge_bytes(
            "probe", 16
        )

    def test_undecodable_prior_chunk_rejects_not_crashes(self, params):
        """A structurally broken earlier chunk must yield a graceful
        rejection from workers fast-forwarding over it, not a raw
        EncodingError crashing the pool."""
        frames = _chunked_frames(params, chunks=2, rows=8)
        prover_id, ok, note = verify_coin_frame(
            params, frames[1], CONTEXT, prior_frames=[frames[0][:-40]], start=8
        )
        assert prover_id == "prover-0" and not ok
        assert "undecodable prior chunk" in note

    def test_undecodable_prior_chunk_rejects_stream_via_pool(self, params):
        frames = _chunked_frames(params, chunks=3, rows=8)
        frames[0] = frames[0][:-40]
        with VerificationPool(params, processes=2) as pool:
            ok, note = pool.verify_chunked_stream(frames, CONTEXT, rows_per_chunk=8)
        assert not ok
        assert "undecodable" in note

    def test_raw_frame_advance_matches_decoded_advance(self, params):
        """The byte-level fast-forward (no element decoding) reaches the
        same transcript state as advancing over the decoded message."""
        frames = _chunked_frames(params, chunks=1, rows=8)
        decoded_path = coin_transcript(params, "prover-0", CONTEXT)
        advance_coin_transcript(
            params, decoded_path, decode_message(params.group, frames[0])
        )
        raw_path = coin_transcript(params, "prover-0", CONTEXT)
        advance_coin_transcript_frame(params, raw_path, frames[0])
        assert raw_path.challenge_bytes("probe", 16) == decoded_path.challenge_bytes(
            "probe", 16
        )


class TestPool:
    def test_per_prover_parallel(self, params):
        frames = _coin_frames(params, cheat=("prover-1",))
        with VerificationPool(params, processes=2) as pool:
            results = pool.verify_prover_messages(frames, CONTEXT)
        verdicts = {prover_id: ok for prover_id, ok, _ in results}
        assert verdicts == {"prover-0": True, "prover-1": False}
        notes = {prover_id: note for prover_id, _, note in results}
        assert "coin proof rejected at coin" in notes["prover-1"]

    def test_per_chunk_parallel_accepts_honest_stream(self, params):
        frames = _chunked_frames(params)
        with VerificationPool(params, processes=2) as pool:
            ok, note = pool.verify_chunked_stream(frames, CONTEXT, rows_per_chunk=16)
        assert ok and note is None

    def test_per_chunk_parallel_pinpoints_global_coin_index(self, params):
        frames = _chunked_frames(params, cheat_chunk=2)
        with VerificationPool(params, processes=2) as pool:
            ok, note = pool.verify_chunked_stream(frames, CONTEXT, rows_per_chunk=16)
        assert not ok
        # Chunk 2 starts at coin 32; the bit-flip hit its last proof.
        assert "coin proof rejected at coin 47" in note

    def test_pool_matches_sequential_verifier(self, params):
        """The pool's verdicts equal PublicVerifier's for the same frames."""
        from repro.core.verifier import PublicVerifier

        frames = _coin_frames(params, cheat=("prover-1",))
        verifier = PublicVerifier(params, SeededRNG("v"))
        messages = [decode_message(params.group, frame) for frame in frames]
        expected = verifier.verify_all_coin_commitments(messages, CONTEXT)
        with VerificationPool(params, processes=1) as pool:
            results = pool.verify_prover_messages(frames, CONTEXT)
        assert {p: ok for p, ok, _ in results} == expected
