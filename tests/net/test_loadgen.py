"""Load generator: deterministic plans, open-loop delivery, gateway E2E.

Pinned here:

* same seed ⇒ the same Poisson arrival schedule, the same churned
  payloads, the same exact wire bytes (``bytes_planned``); a different
  seed ⇒ a different schedule — the plan IS the experiment definition;
* a full open-loop run against a live :class:`FleetGateway` loses
  nothing: every offered session gets an outcome, ``bytes_sent`` equals
  the plan's ``bytes_planned``, and a concurrent ``/metrics`` scrape
  agrees with the generator's own report (admitted == offered,
  in-flight back to 0);
* malformed gateway requests are rejected with a reason, not a hang.
"""

import json
import socket

import pytest

from repro.api.queries import CountQuery
from repro.errors import ParameterError
from repro.loadgen import build_plan, percentile, run_loadgen
from repro.net.fleet import FleetConfig, FleetDispatcher
from repro.net.gateway import FleetGateway
from repro.net.metrics import MetricsServer, ServingMetrics

QUERY = CountQuery(epsilon=1.0, delta=2**-10)


class TestPlanDeterminism:
    def test_same_seed_same_plan(self):
        a = build_plan(rate=5.0, duration=4.0, seed="det", clients=6, churn=2)
        b = build_plan(rate=5.0, duration=4.0, seed="det", clients=6, churn=2)
        assert [x.at_s for x in a.arrivals] == [x.at_s for x in b.arrivals]
        assert [x.line for x in a.arrivals] == [x.line for x in b.arrivals]
        assert a.bytes_planned == b.bytes_planned > 0

    def test_different_seed_different_schedule(self):
        a = build_plan(rate=5.0, duration=4.0, seed="det")
        b = build_plan(rate=5.0, duration=4.0, seed="det-2")
        assert [x.at_s for x in a.arrivals] != [x.at_s for x in b.arrivals]

    def test_arrivals_within_window_and_sessions_seeded(self):
        plan = build_plan(rate=10.0, duration=2.0, seed="window")
        assert all(0 < arrival.at_s < 2.0 for arrival in plan.arrivals)
        for arrival in plan.arrivals:
            assert arrival.payload["seed"] == f"window/g{arrival.index}"
            assert json.loads(arrival.line) == arrival.payload

    def test_churn_changes_population_between_arrivals(self):
        plan = build_plan(rate=50.0, duration=2.0, seed="churn", clients=4, churn=2)
        populations = {tuple(arrival.payload["values"]) for arrival in plan.arrivals}
        assert len(populations) > 1

    def test_parameter_validation(self):
        with pytest.raises(ParameterError, match="rate"):
            build_plan(rate=0, duration=1.0, seed="x")
        with pytest.raises(ParameterError, match="duration"):
            build_plan(rate=1.0, duration=0, seed="x")
        with pytest.raises(ParameterError, match="churn"):
            build_plan(rate=1.0, duration=1.0, seed="x", clients=2, churn=3)

    def test_percentile_nearest_rank(self):
        assert percentile([], 0.5) is None
        assert percentile([1.0], 0.99) == 1.0
        values = [float(i) for i in range(1, 101)]
        assert percentile(values, 0.50) == 50.0
        assert percentile(values, 0.95) == 95.0
        assert percentile(values, 0.99) == 99.0


class TestGatewayE2E:
    def _fleet_config(self):
        return FleetConfig(
            frontends=2,
            capacity=2,
            num_servers=2,
            nb_override=16,
            timeout=60.0,
            health_interval=0.05,
        )

    def test_open_loop_run_loses_nothing_and_metrics_agree(self):
        """~6 offered sessions at 3/s against a live 2-front-end fleet:
        all released, exact wire bytes match the plan, and the
        concurrent /metrics scrape tells the same story."""
        metrics = ServingMetrics()
        server = MetricsServer(metrics.registry)
        dispatcher = FleetDispatcher(self._fleet_config(), metrics=metrics)
        dispatcher.start()
        gateway = FleetGateway(dispatcher, QUERY, timeout=60.0)
        try:
            report = run_loadgen(
                port=gateway.port,
                rate=3.0,
                duration=2.0,
                seed="e2e",
                clients=4,
                drain_timeout=60.0,
            )
            assert report["offered"] > 0
            assert report["lost"] == 0
            assert report["released"] == report["offered"]
            assert report["bytes_sent"] == report["bytes_planned"]
            assert report["bytes_received"] > 0
            assert report["p50_s"] is not None
            assert gateway.admitted == report["offered"]
            assert dispatcher.drain(timeout=60.0)
            text_samples = _scrape(server.port)
            assert (
                text_samples["repro_sessions_admitted_total"] == report["offered"]
            )
            assert (
                text_samples["repro_sessions_completed_total"]
                == report["released"]
            )
            assert text_samples["repro_sessions_in_flight"] == 0
        finally:
            gateway.close()
            dispatcher.stop()
            server.close()

    def test_bad_requests_rejected_with_reason(self):
        dispatcher = FleetDispatcher(self._fleet_config())
        dispatcher.start()
        gateway = FleetGateway(dispatcher, QUERY, timeout=30.0)
        try:
            with socket.create_connection(("127.0.0.1", gateway.port), 10.0) as conn:
                conn.sendall(b'not json\n{"op":"bogus"}\n{"op":"ping"}\n')
                with conn.makefile("rb") as lines:
                    replies = [json.loads(next(lines)) for _ in range(3)]
            statuses = [r.get("status", "ok" if r.get("ok") else "?") for r in replies]
            assert statuses.count("rejected") == 2
            assert any(r.get("ok") for r in replies)
            assert gateway.rejected == 2
        finally:
            gateway.close()
            dispatcher.stop()


def _scrape(port: int) -> dict[str, float]:
    import urllib.request

    with urllib.request.urlopen(
        f"http://127.0.0.1:{port}/metrics", timeout=10.0
    ) as response:
        text = response.read().decode("utf-8")
    samples = {}
    for line in text.splitlines():
        if not line or line.startswith("#"):
            continue
        series, value = line.rsplit(" ", 1)
        samples[series] = float(value)
    return samples
