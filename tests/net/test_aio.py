"""Async serving: wire compat, session demux, and mux byte-identity.

The acceptance bar of the async front-end: seeded releases from a
:class:`SessionMux` with N ∈ {1, 2, 4} concurrent sessions are
byte-identical to the corresponding solo in-process
:class:`repro.api.Session` runs, over async-only *and* mixed sync/async
peer topologies; and a peer that dies mid-phase yields an attributed
:class:`ProtocolAbort` for its session only — never a hang, never
collateral damage to the other sessions.
"""

import asyncio
import socket
import struct
import threading
import time

import pytest

from repro.api.queries import CountQuery
from repro.api.session import Session
from repro.crypto.serialization import encode_message
from repro.errors import ProtocolAbort
from repro.net.aio import (
    AsyncClientRunner,
    AsyncServerNode,
    AsyncSocketTransport,
    SessionChannel,
    SessionMux,
    SessionSpec,
)
from repro.net.nodes import ServerNode
from repro.net.transport import SESSION_ANY, SocketTransport, pack_frame
from repro.utils.rng import SeededRNG

DELTA = 2**-10
QUERY = CountQuery(epsilon=1.0, delta=DELTA)
SERVERS = ["prover-0", "prover-1"]
VALUES = [1, 0, 1, 1, 0]


def _seed(run: str, session: int) -> str:
    return f"{run}/s{session}"


def _values(session: int) -> list[int]:
    shift = session % len(VALUES)
    return VALUES[shift:] + VALUES[:shift]


def _solo_release_bytes(run: str, session: int) -> bytes:
    solo = Session(
        QUERY,
        num_provers=len(SERVERS),
        group="p64-sim",
        nb_override=32,
        rng=SeededRNG(_seed(run, session)),
    )
    solo.submit(_values(session))
    return encode_message(solo.release().release)


class TestFrameFormat:
    def test_session_zero_is_the_legacy_wire_format(self):
        """v1 byte-compat: a session-0 frame is exactly the old header."""
        assert pack_frame(b"abc", 0) == struct.pack(">I", 3) + b"abc"

    def test_v2_header_carries_the_session_id(self):
        packed = pack_frame(b"abc", 7)
        word, session = struct.unpack(">II", packed[:8])
        assert word & 0x80000000
        assert word & 0x7FFFFFFF == 3
        assert session == 7
        assert packed[8:] == b"abc"


class TestAsyncTransport:
    def test_roundtrip_and_session_demux(self):
        """Frames for different sessions interleave over one connection
        and land in the right per-session queues, in order."""

        async def main():
            listener = await AsyncSocketTransport.listen("analyst")
            peer = await AsyncSocketTransport.connect(
                "peer-1", "analyst", port=listener.port
            )
            await listener.accept(1, 5.0)
            await peer.send("analyst", b"s2-first", session=2)
            await peer.send("analyst", b"s0", session=0)
            await peer.send("analyst", b"s2-second", session=2)
            assert await listener.recv("peer-1", session=0, timeout=5.0) == b"s0"
            assert (
                await listener.recv("peer-1", session=2, timeout=5.0) == b"s2-first"
            )
            assert (
                await listener.recv("peer-1", session=2, timeout=5.0) == b"s2-second"
            )
            await listener.send("peer-1", b"pong", session=2)
            assert await peer.recv("analyst", session=2, timeout=5.0) == b"pong"
            await peer.aclose()
            await listener.aclose()

        asyncio.run(main())

    def test_recv_timeout_aborts_with_peer_named(self):
        async def main():
            listener = await AsyncSocketTransport.listen("analyst")
            peer = await AsyncSocketTransport.connect(
                "peer-1", "analyst", port=listener.port
            )
            await listener.accept(1, 5.0)
            with pytest.raises(ProtocolAbort) as err:
                await listener.recv("peer-1", timeout=0.05)
            assert err.value.party == "peer-1"
            await peer.aclose()
            await listener.aclose()

        asyncio.run(main())

    def test_closed_peer_aborts_pending_recv(self):
        async def main():
            listener = await AsyncSocketTransport.listen("analyst")
            peer = await AsyncSocketTransport.connect(
                "peer-1", "analyst", port=listener.port
            )
            await listener.accept(1, 5.0)
            recv = asyncio.ensure_future(listener.recv("peer-1", timeout=10.0))
            await asyncio.sleep(0.05)
            await peer.aclose()
            with pytest.raises(ProtocolAbort) as err:
                await recv
            assert err.value.party == "peer-1"
            await listener.aclose()

        asyncio.run(main())

    def test_oversized_announcement_aborts_before_buffering(self):
        async def main():
            listener = await AsyncSocketTransport.listen(
                "analyst", max_frame_bytes=1024
            )
            raw = socket.create_connection(("127.0.0.1", listener.port))
            raw.sendall(struct.pack(">I", 6) + b"peer-1")
            await listener.accept(1, 5.0)
            raw.sendall(struct.pack(">I", 2048) + b"\x00" * 2048)
            with pytest.raises(ProtocolAbort) as err:
                await listener.recv("peer-1", timeout=5.0)
            assert "oversized" in str(err.value)
            raw.close()
            await listener.aclose()

        asyncio.run(main())

    def test_duplicate_scope_handshake_dropped_not_fatal(self):
        """Two ANY-scope connections claiming one name: the second is
        dropped, the honest one keeps serving."""

        async def main():
            listener = await AsyncSocketTransport.listen("analyst")
            first = await AsyncSocketTransport.connect(
                "peer-1", "analyst", port=listener.port
            )
            await listener.accept(1, 5.0)
            squatter = await AsyncSocketTransport.connect(
                "peer-1", "analyst", port=listener.port
            )
            second = await AsyncSocketTransport.connect(
                "peer-2", "analyst", port=listener.port
            )
            assert await listener.accept(1, 5.0) == ["peer-2"]
            assert listener.dropped_handshakes == ["duplicate name 'peer-1'"]
            await first.send("analyst", b"still-first")
            assert await listener.recv("peer-1", timeout=5.0) == b"still-first"
            for transport in (first, squatter, second):
                await transport.aclose()
            await listener.aclose()

        asyncio.run(main())

    def test_scope_pinned_expected_drops_session_impostor(self):
        """An impostor handshaking an expected *name* under a session
        scope (to hijack that session's exact-scope routing) is dropped
        when the front-end pins scopes; the honest ANY-scope host keeps
        every session."""

        async def main():
            listener = await AsyncSocketTransport.listen("analyst")
            accept = asyncio.ensure_future(
                listener.accept(1, 5.0, expected=[("prover-0", SESSION_ANY)])
            )
            await asyncio.sleep(0.05)  # the expectation filter is armed
            impostor = SocketTransport.connect(
                "prover-0", "analyst", port=listener.port, session=2
            )
            honest = await AsyncSocketTransport.connect(
                "prover-0", "analyst", port=listener.port
            )
            assert await accept == ["prover-0"]
            assert any(
                "unexpected name 'prover-0' (session 2)" in note
                for note in listener.dropped_handshakes
            ), listener.dropped_handshakes
            await listener.send("prover-0", b"hello", session=2)
            assert await honest.recv("analyst", session=2, timeout=5.0) == b"hello"
            impostor.close()
            await honest.aclose()
            await listener.aclose()

        asyncio.run(main())

    def test_lockdown_refuses_late_connections(self):
        """Once the topology is complete, a connection arriving
        mid-session is dropped unread — never registered or buffered."""

        async def main():
            listener = await AsyncSocketTransport.listen("analyst")
            peer = await AsyncSocketTransport.connect(
                "peer-1", "analyst", port=listener.port
            )
            await listener.accept(1, 5.0)
            listener.lockdown()
            late = SocketTransport.connect("mallory", "analyst", port=listener.port)
            await asyncio.sleep(0.2)  # give the drop handler its turn
            assert "<connection after lockdown>" in listener.dropped_handshakes
            assert not any(name == "mallory" for name, _ in listener._conns)
            late.close()
            await peer.aclose()
            await listener.aclose()

        asyncio.run(main())

    def test_trickled_handshake_cannot_outlive_lockdown(self):
        """A connection opened during the accept window whose handshake
        only completes after lockdown is dropped — it must not slip past
        the disarmed expectation filter and register under an expected
        name's session scope."""

        async def main():
            listener = await AsyncSocketTransport.listen("analyst")
            accept = asyncio.ensure_future(
                listener.accept(1, 5.0, expected=[("prover-0", SESSION_ANY)])
            )
            await asyncio.sleep(0.05)
            sneak = socket.create_connection(("127.0.0.1", listener.port))
            honest = await AsyncSocketTransport.connect(
                "prover-0", "analyst", port=listener.port
            )
            assert await accept == ["prover-0"]
            listener.lockdown()
            # Handshake lands only now: name expected, scope session 2.
            sneak.sendall(pack_frame(b"prover-0", 2))
            await asyncio.sleep(0.2)
            assert ("prover-0", 2) not in listener._conns
            assert "<connection after lockdown>" in listener.dropped_handshakes
            sneak.close()
            await honest.aclose()
            await listener.aclose()

        asyncio.run(main())

    def test_scoped_connections_share_a_name(self):
        """The same peer name can appear once per session scope; outbound
        frames route to the exact scope before the ANY fallback."""

        async def main():
            listener = await AsyncSocketTransport.listen("analyst")
            any_scope = await AsyncSocketTransport.connect(
                "peer-1", "analyst", port=listener.port
            )
            scoped = SocketTransport.connect(
                "peer-1", "analyst", port=listener.port, session=3
            )
            await listener.accept(2, 5.0)
            await listener.send("peer-1", b"to-any", session=1)
            await listener.send("peer-1", b"to-scoped", session=3)
            assert await any_scope.recv("analyst", session=1, timeout=5.0) == b"to-any"
            assert scoped.recv("analyst", timeout=5.0) == b"to-scoped"
            scoped.close()
            await any_scope.aclose()
            await listener.aclose()

        asyncio.run(main())


def _run_mux_topology(run: str, sessions: int, sync_sessions: set[int]):
    """One mux front-end, K server peers, one client peer; the sessions in
    ``sync_sessions`` are served by blocking scoped SocketTransport peers
    on threads, the rest by async multi-session hosts."""

    async def main():
        listener = await AsyncSocketTransport.listen("analyst")
        port = listener.port
        threads = []
        for name in SERVERS:
            for s in sorted(sync_sessions):
                transport = SocketTransport.connect(
                    name, "analyst", port=port, session=s
                )
                node = ServerNode(
                    transport, SeededRNG(_seed(run, s)).fork(name), timeout=30.0
                )
                threads.append(threading.Thread(target=node.run, daemon=True))
        for thread in threads:
            thread.start()

        async_sessions = [s for s in range(sessions) if s not in sync_sessions]
        async_transports = []
        tasks = []
        for name in SERVERS:
            transport = await AsyncSocketTransport.connect(
                name, "analyst", port=port
            )
            async_transports.append(transport)
            if async_sessions:
                node = AsyncServerNode(
                    transport,
                    {
                        s: SeededRNG(_seed(run, s)).fork(name)
                        for s in async_sessions
                    },
                    timeout=30.0,
                )
                tasks.append(node.run())
        clients_transport = await AsyncSocketTransport.connect(
            "clients", "analyst", port=port
        )
        async_transports.append(clients_transport)
        runner = AsyncClientRunner(
            clients_transport,
            {
                s: (QUERY, _values(s), SeededRNG(_seed(run, s)))
                for s in range(sessions)
            },
            timeout=30.0,
        )
        tasks.append(runner.run())

        expect = len(SERVERS) * (1 + len(sync_sessions)) + 1
        await listener.accept(expect, 15.0)

        mux = SessionMux(
            [
                SessionSpec(
                    QUERY,
                    rng=SeededRNG(_seed(run, s)),
                    group="p64-sim",
                    nb_override=32,
                )
                for s in range(sessions)
            ],
            listener,
            SERVERS,
            timeout=30.0,
        )
        await asyncio.gather(mux.run(), *tasks)
        for thread in threads:
            thread.join(timeout=10.0)
            assert not thread.is_alive()
        for transport in async_transports:
            await transport.aclose()
        await listener.aclose()
        return mux

    return asyncio.run(main())


class TestSessionMuxByteIdentity:
    @pytest.mark.parametrize("sessions", [1, 2, 4])
    def test_async_only_topology(self, sessions):
        """Every mux session == its solo in-process Session, byte for byte."""
        run = f"aio-{sessions}"
        mux = _run_mux_topology(run, sessions, sync_sessions=set())
        for s in range(sessions):
            assert mux.errors[s] is None, mux.errors[s]
            release = mux.results[s].release
            assert release.accepted
            assert encode_message(release) == _solo_release_bytes(run, s)

    @pytest.mark.parametrize("sessions", [2, 4])
    def test_mixed_sync_async_topology(self, sessions):
        """Session 1's provers are blocking SocketTransport peers bound to
        that session; the rest ride async hosts.  Wire compatibility means
        the mux cannot tell the difference — byte-identity must hold for
        every session."""
        run = f"mixed-{sessions}"
        mux = _run_mux_topology(run, sessions, sync_sessions={1})
        for s in range(sessions):
            assert mux.errors[s] is None, mux.errors[s]
            assert encode_message(mux.results[s].release) == _solo_release_bytes(
                run, s
            )

    def test_legacy_sync_peers_serve_session_zero(self):
        """A single-session mux over peers that speak only the v1 wire
        format (no session binding at all) — old nodes against the new
        front-end, byte-identical release."""
        run = "legacy"
        mux = _run_mux_topology(run, 1, sync_sessions={0})
        assert mux.errors[0] is None, mux.errors[0]
        assert encode_message(mux.results[0].release) == _solo_release_bytes(run, 0)
