"""Sharded serving: merged releases and cross-shard cheater pinpointing.

The acceptance bar of the sharding layer: a session served through a
:class:`~repro.net.shard.ShardedAnalyst` with S shard workers releases
*byte-identically* to the unsharded in-process :class:`repro.api.Session`
under seeded RNG (S ∈ {1, 2, 4}, all transports), and a cheat caught by
one shard — a tampered coin frame, a bad validity proof — is pinpointed
with the right prover/client named while honest parties (and the other
shards' work) are unaffected.
"""

import threading

import pytest

from repro.api.queries import BoundedSumQuery, CountQuery, HistogramQuery
from repro.api.session import Session
from repro.core.messages import ClientStatus, ProverStatus
from repro.core.prover import (
    InputDroppingProver,
    NonBitCoinProver,
    OutputTamperingProver,
    Prover,
)
from repro.core.verifier import PublicVerifier
from repro.crypto.serialization import decode_message, encode_message
from repro.net.nodes import ClientRunner, ServerNode
from repro.net.serve import run_distributed_session
from repro.net.shard import ShardWorker, ShardedAnalyst
from repro.net.transport import InMemoryHub
from repro.utils.rng import SeededRNG

DELTA = 2**-10


def in_process_release_bytes(query, values, *, seed, num_servers=2, nb=32, chunk=None):
    session = Session(
        query,
        num_provers=num_servers,
        group="p64-sim",
        nb_override=nb,
        chunk_size=chunk,
        rng=SeededRNG(seed),
    )
    session.submit(values)
    return encode_message(session.release().release)


def run_sharded_memory(
    query,
    values,
    *,
    seed="shard",
    num_servers=2,
    shards=2,
    nb=32,
    chunk_size=8,
    prover_factory_for=None,
    tamper=None,
):
    """One full sharded session over the in-memory hub (node threads)."""
    hub = InMemoryHub()
    threads = []
    for k in range(num_servers):
        name = f"prover-{k}"
        factory = prover_factory_for(k) if prover_factory_for else Prover
        node = ServerNode(
            hub.endpoint(name),
            SeededRNG(seed).fork(name),
            prover_factory=factory,
            timeout=30.0,
        )
        threads.append(threading.Thread(target=node.run, name=name, daemon=True))
    shard_names = [f"shard-{s}" for s in range(shards)]
    for name in shard_names:
        worker = ShardWorker(hub.endpoint(name), timeout=30.0)
        threads.append(threading.Thread(target=worker.run, name=name, daemon=True))
    runner = ClientRunner(
        hub.endpoint("clients"),
        query,
        values,
        rng=SeededRNG(seed),
        timeout=30.0,
        tamper=tamper,
    )
    threads.append(threading.Thread(target=runner.run, name="clients", daemon=True))
    for thread in threads:
        thread.start()
    analyst = ShardedAnalyst(
        query,
        hub.endpoint("analyst"),
        [f"prover-{k}" for k in range(num_servers)],
        shard_names,
        group="p64-sim",
        nb_override=nb,
        chunk_size=chunk_size,
        rng=SeededRNG(seed),
        timeout=30.0,
    )
    result = analyst.run()
    for thread in threads:
        thread.join(timeout=10.0)
    return result


class TestShardedEquivalence:
    @pytest.mark.parametrize("shards", [1, 2, 4])
    def test_memory_count_session_byte_identical(self, shards):
        query = CountQuery(epsilon=1.0, delta=DELTA)
        values = [1, 0, 1, 1, 0, 1, 1]
        outcome = run_distributed_session(
            query,
            values,
            transport="memory",
            num_servers=2,
            shards=shards,
            group="p64-sim",
            nb_override=32,
            seed="shard-equiv",
        )
        assert outcome["accepted"]
        assert outcome["byte_identical"]
        # Triangle check: sharded == unsharded Session at the same chunk.
        assert encode_message(outcome["release"]) == in_process_release_bytes(
            query, values, seed="shard-equiv", chunk=outcome["chunk_size"]
        )

    @pytest.mark.parametrize("transport", ["multiprocess", "socket"])
    def test_process_backed_transports_byte_identical(self, transport):
        outcome = run_distributed_session(
            CountQuery(epsilon=1.0, delta=DELTA),
            [1, 0, 1, 1, 0, 1],
            transport=transport,
            num_servers=2,
            shards=2,
            group="p64-sim",
            nb_override=32,
            seed="shard-proc",
        )
        assert outcome["accepted"] and outcome["byte_identical"]

    def test_histogram_and_bounded_sum_shard_cleanly(self):
        hist = run_distributed_session(
            HistogramQuery(bins=3, epsilon=1.0, delta=DELTA),
            [0, 1, 2, 1, 1, 0],
            transport="memory",
            num_servers=2,
            shards=3,
            group="p64-sim",
            nb_override=32,
            chunk_size=8,
            seed="shard-hist",
        )
        assert hist["accepted"] and hist["byte_identical"]
        summed = run_distributed_session(
            BoundedSumQuery(value_bits=3, epsilon=2.0, delta=DELTA),
            [5, 2, 7, 0],
            transport="memory",
            num_servers=1,
            shards=2,
            group="p64-sim",
            nb_override=16,
            chunk_size=4,
            seed="shard-sum",
        )
        assert summed["accepted"] and summed["byte_identical"]

    def test_single_server_many_shards(self):
        outcome = run_distributed_session(
            CountQuery(epsilon=1.0, delta=DELTA),
            [1, 0, 1],
            transport="memory",
            num_servers=1,
            shards=4,
            group="p64-sim",
            nb_override=16,
            seed="shard-k1",
        )
        assert outcome["accepted"] and outcome["byte_identical"]


class TestCrossShardPinpointing:
    def test_bad_coin_proofs_name_the_prover_with_shard_attribution(self):
        """prover-1 commits non-bits; some shard's sequential replay must
        name the exact coin, merged into the audit with the shard index,
        and honest prover-0 stays HONEST."""

        def factory_for(k):
            return NonBitCoinProver if k == 1 else Prover

        result = run_sharded_memory(
            CountQuery(epsilon=1.0, delta=DELTA),
            [1, 0, 1, 1],
            prover_factory_for=factory_for,
            shards=2,
            nb=32,
            chunk_size=8,
        )
        release = result.release
        assert not release.accepted
        assert release.audit.provers["prover-1"] is ProverStatus.BAD_COIN_PROOF
        assert release.audit.provers["prover-0"] is ProverStatus.HONEST
        assert any(
            "prover-1" in note
            and "shard" in note
            and "coin proof rejected at coin" in note
            for note in release.audit.notes
        ), release.audit.notes

    def test_line13_tamper_caught_at_the_front_end(self):
        """Output tampering is a front-end (Line 13) catch — sharding the
        Σ-verification must not weaken it."""

        def factory_for(k):
            return OutputTamperingProver if k == 0 else Prover

        result = run_sharded_memory(
            CountQuery(epsilon=1.0, delta=DELTA),
            [1, 0, 1, 1],
            prover_factory_for=factory_for,
        )
        release = result.release
        assert not release.accepted
        assert release.audit.provers["prover-0"] is ProverStatus.FAILED_FINAL_CHECK
        assert release.audit.provers["prover-1"] is ProverStatus.HONEST

    def test_input_dropping_prover_caught_through_shards(self):
        """Dropping a client's share breaks Line 13 against the *merged*
        client products — guaranteed inclusion survives sharding."""

        def factory_for(k):
            if k != 0:
                return Prover

            def build(name, params, rng, plan=None):
                return InputDroppingProver(
                    name, params, rng, victim="client-1", plan=plan
                )

            return build

        result = run_sharded_memory(
            CountQuery(epsilon=1.0, delta=DELTA),
            [1, 1, 1, 0],
            prover_factory_for=factory_for,
        )
        release = result.release
        assert not release.accepted
        assert release.audit.provers["prover-0"] is ProverStatus.FAILED_FINAL_CHECK

    def test_tampered_enrollment_names_the_client_honest_shards_unaffected(self):
        """A bit-flip in client-2's validity proof lands in whichever
        shard owns its chunk: exactly client-2 is INVALID_PROOF, every
        other client stays VALID and the session still releases."""

        from repro.utils.encoding import decode_length_prefixed, encode_length_prefixed

        def tamper(index, frame):
            if index != 2:
                return frame
            parts = decode_length_prefixed(frame)
            # parts[1] is the broadcast frame; its trailing bytes are the
            # last scalar of the validity proof.
            broadcast = parts[1]
            parts[1] = broadcast[:-1] + bytes([broadcast[-1] ^ 0x01])
            return encode_length_prefixed(*parts)

        result = run_sharded_memory(
            CountQuery(epsilon=1.0, delta=DELTA),
            [1, 0, 1, 1, 0, 1],
            tamper=tamper,
            shards=3,
            chunk_size=2,  # six clients -> three chunks, one per shard
        )
        release = result.release
        assert release.accepted
        assert release.audit.clients["client-2"] is ClientStatus.INVALID_PROOF
        for name in ("client-0", "client-1", "client-3", "client-4", "client-5"):
            assert release.audit.clients[name] is ClientStatus.VALID
        assert all(
            status is ProverStatus.HONEST
            for status in release.audit.provers.values()
        )

    def test_tampered_share_opening_is_bad_opening_through_shards(self):
        """A corrupted private share opening triggers a prover complaint;
        the owning shard must fold it into a BAD_OPENING verdict."""

        def tamper(index, frame):
            if index != 1:
                return frame
            return frame[:-1] + bytes([frame[-1] ^ 0x01])

        result = run_sharded_memory(
            CountQuery(epsilon=1.0, delta=DELTA),
            [1, 0, 1, 1],
            tamper=tamper,
        )
        release = result.release
        assert release.accepted
        assert release.audit.clients["client-1"] is ClientStatus.BAD_OPENING
        assert release.audit.clients["client-0"] is ClientStatus.VALID

    def test_undecodable_enrollment_dropped_before_dispatch(self):
        """Truncated enrollments die at the front-end with an audit note;
        shards only ever see well-formed frames."""

        def tamper(index, frame):
            return frame[:-40] if index == 2 else frame

        result = run_sharded_memory(
            CountQuery(epsilon=1.0, delta=DELTA),
            [1, 0, 1, 1],
            tamper=tamper,
        )
        release = result.release
        assert release.accepted
        assert "client-2" not in release.audit.clients
        assert any("dropped" in note for note in release.audit.notes)


class TestMergeHelpers:
    """The verifier-level merge API the sharded front-end is built on."""

    def _coin_setup(self, nb=16, seed="merge"):
        query = CountQuery(epsilon=1.0, delta=DELTA)
        params = query.build_params(num_provers=1, group="p64-sim", nb_override=nb)
        prover = Prover("prover-0", params, SeededRNG(seed))
        prover.begin_coin_stream(b"merge-ctx")
        return params, prover

    def test_split_coin_stream_partials_merge_to_the_unsharded_products(self):
        """Two verifiers each verifying half the chunks (fast-forwarding
        the other half) produce Line 12 partials whose product equals the
        single-verifier fold."""
        params, prover = self._coin_setup()
        chunks = []
        bits = []
        for c in range(4):
            message = prover.commit_coin_chunk(4)
            chunk_bits = [[(c + j) % 2] for j in range(4)]
            prover.absorb_public_bits(chunk_bits)
            chunks.append((encode_message(message), message))
            bits.append(chunk_bits)

        whole = PublicVerifier(params, SeededRNG("w"))
        whole.begin_coin_stream("prover-0", b"merge-ctx")
        for (frame, message), chunk_bits in zip(chunks, bits):
            assert whole.verify_coin_chunk(message)
            whole.apply_public_bits_chunk("prover-0", chunk_bits)
        assert whole.finish_coin_stream("prover-0")
        expected = whole._adjusted_products["prover-0"]

        partials = []
        for own_parity in (0, 1):
            shard = PublicVerifier(params, SeededRNG(f"s{own_parity}"))
            shard.begin_coin_stream("prover-0", b"merge-ctx")
            for index, ((frame, message), chunk_bits) in enumerate(zip(chunks, bits)):
                if index % 2 == own_parity:
                    fresh = decode_message(params.group, frame)
                    assert shard.verify_coin_chunk(fresh)
                    shard.apply_public_bits_chunk("prover-0", chunk_bits)
                else:
                    assert shard.skip_coin_chunk("prover-0", frame, 4)
            healthy, products = shard.partial_adjusted_products("prover-0")
            assert healthy
            partials.append(products)

        merged = [
            a.element * b.element for a, b in zip(partials[0], partials[1])
        ]
        assert [c.element for c in expected] == merged

        # install_adjusted_products adopts the merged value wholesale.
        front = PublicVerifier(params, SeededRNG("f"))
        from repro.crypto.pedersen import Commitment

        front.install_adjusted_products("prover-0", [Commitment(m) for m in merged])
        assert front._adjusted_products["prover-0"][0].element == merged[0]

    def test_skip_coin_chunk_rejects_garbage_frames(self):
        params, prover = self._coin_setup()
        message = prover.commit_coin_chunk(4)
        shard = PublicVerifier(params, SeededRNG("g"))
        shard.begin_coin_stream("prover-0", b"merge-ctx")
        assert not shard.skip_coin_chunk("prover-0", b"not a frame", 4)
        # The stream is poisoned: later chunks are refused too.
        assert not shard.verify_coin_chunk(message)

    def test_record_client_verdicts_preserves_order_and_filters(self):
        query = CountQuery(epsilon=1.0, delta=DELTA)
        params = query.build_params(num_provers=1, group="p64-sim", nb_override=16)
        verifier = PublicVerifier(params, SeededRNG("v"))
        valid = verifier.record_client_verdicts(
            [
                ("client-0", ClientStatus.VALID),
                ("client-1", ClientStatus.INVALID_PROOF),
                ("client-2", ClientStatus.BAD_OPENING),
                ("client-3", ClientStatus.VALID),
            ]
        )
        assert valid == ["client-0", "client-3"]
        assert list(verifier.audit.clients) == [
            "client-0",
            "client-1",
            "client-2",
            "client-3",
        ]

    def test_merge_client_products_shape_checked(self):
        query = CountQuery(epsilon=1.0, delta=DELTA)
        params = query.build_params(num_provers=2, group="p64-sim", nb_override=16)
        verifier = PublicVerifier(params, SeededRNG("v"))
        with pytest.raises(Exception):
            verifier.merge_client_products([[None]])  # one row, K = 2
