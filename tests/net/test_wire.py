"""Wire registry and node-protocol framing: round-trips and hostile input.

Satellite coverage for the `repro.net` redesign: every registered message
type round-trips across all three group backends, and malformed /
truncated / wrong-magic frames raise :class:`EncodingError` (never crash,
never decode to something else).
"""

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.messages import (
    AuditRecord,
    ClientBroadcast,
    ClientShareMessage,
    ClientStatus,
    CoinCommitmentMessage,
    MorraCommitMessage,
    MorraRevealMessage,
    ProverOutputMessage,
    ProverStatus,
    Release,
)
from repro.core.params import setup
from repro.core.plan import AggregationPlan
from repro.crypto.serialization import (
    decode_message,
    encode_message,
    wire_size,
)
from repro.errors import EncodingError, NotOnGroupError
from repro.net import wire
from repro.utils.encoding import decode_length_prefixed, encode_length_prefixed
from repro.utils.rng import SeededRNG

BACKENDS = ["p64-sim", "ristretto255", "p256"]


@pytest.fixture(scope="module", params=BACKENDS)
def params(request):
    return setup(1.0, 2**-10, num_provers=2, group=request.param, nb_override=31)


def _sample_enrollment(params, seed="wire-client", query=None):
    from repro.api.queries import CountQuery

    query = query or CountQuery(epsilon=1.0, delta=2**-10)
    client = query.make_client("client-0", 1, SeededRNG(seed))
    return client.submit(params)


def _sample_coin_message(params, rows=3, seed="wire-coins"):
    from repro.core.prover import Prover

    prover = Prover("prover-0", params, SeededRNG(seed))
    prover.begin_coin_stream(b"ctx")
    message = prover.commit_coin_chunk(rows)
    return message


class TestMessageRegistry:
    def test_client_broadcast_roundtrip(self, params):
        broadcast, _ = _sample_enrollment(params)
        restored = decode_message(params.group, encode_message(broadcast))
        assert restored == broadcast

    def test_client_share_roundtrip(self, params):
        _, privates = _sample_enrollment(params)
        for message in privates:
            assert decode_message(params.group, encode_message(message)) == message

    def test_coin_commitments_roundtrip(self, params):
        message = _sample_coin_message(params)
        assert decode_message(params.group, encode_message(message)) == message

    def test_prover_output_roundtrip(self, params):
        message = ProverOutputMessage(prover_id="prover-1", y=(3, 5), z=(7, 11))
        assert decode_message(params.group, encode_message(message)) == message

    def test_morra_roundtrips(self, params):
        commit = MorraCommitMessage(sender="verifier", digests=(b"\x01" * 32, b"\x02" * 32))
        reveal = MorraRevealMessage(sender="verifier", values=(0, 1, params.q - 1))
        assert decode_message(params.group, encode_message(commit)) == commit
        assert decode_message(params.group, encode_message(reveal)) == reveal

    def test_release_roundtrip(self, params):
        audit = AuditRecord(
            clients={"client-0": ClientStatus.VALID, "client-1": ClientStatus.BAD_OPENING},
            provers={"prover-0": ProverStatus.HONEST, "prover-1": ProverStatus.ABORTED},
        )
        audit.note("prover-1: went silent")
        release = Release(
            raw=(17, 3),
            estimate=(1.5, -2.25),
            accepted=False,
            audit=audit,
            epsilon=0.88,
            delta=2**-10,
        )
        restored = decode_message(params.group, encode_message(release))
        assert restored == release

    def test_wire_size_matches_encoding(self, params):
        message = _sample_coin_message(params)
        assert wire_size(message) == len(encode_message(message))

    def test_wire_size_none_for_unregistered(self):
        assert wire_size(42) is None
        assert wire_size("hello") is None

    def test_validity_proof_survives_verification(self, params):
        # A decoded broadcast must still verify — decoding validates
        # group membership, re-encoding is canonical.
        from repro.core.verifier import PublicVerifier

        broadcast, _ = _sample_enrollment(params)
        restored = decode_message(params.group, encode_message(broadcast))
        verifier = PublicVerifier(params, SeededRNG("v"))
        assert verifier.validate_clients([restored]) == ["client-0"]


class TestHostileFrames:
    def test_wrong_magic(self, params):
        frame = bytearray(encode_message(_sample_coin_message(params, rows=1)))
        frame[6] ^= 0xFF  # inside WIRE_MAGIC
        with pytest.raises(EncodingError):
            decode_message(params.group, bytes(frame))

    def test_unknown_tag(self, params):
        frame = encode_length_prefixed(b"repro.wire.v1", b"no-such-tag", b"")
        with pytest.raises(EncodingError):
            decode_message(params.group, frame)

    def test_truncated_everywhere(self, params):
        frame = encode_message(_sample_coin_message(params, rows=1))
        for cut in (1, len(frame) // 3, len(frame) - 1):
            with pytest.raises((EncodingError, NotOnGroupError)):
                decode_message(params.group, frame[:cut])

    def test_shape_lies_rejected(self, params):
        # Declare more rows than fields actually present.
        message = _sample_coin_message(params, rows=2)
        parts = decode_length_prefixed(encode_message(message))
        body = decode_length_prefixed(parts[2])
        body[1] = (99).to_bytes(1, "big")  # row count lie
        forged = encode_length_prefixed(
            parts[0], parts[1], encode_length_prefixed(*body)
        )
        with pytest.raises(EncodingError):
            decode_message(params.group, forged)

    def test_bad_group_element_rejected(self, params):
        broadcast, _ = _sample_enrollment(params)
        # Replace the first commitment with an out-of-group encoding
        # (0xff-fill is non-canonical in all three backends); decoding
        # must reject, not hand back a non-element.
        with pytest.raises((EncodingError, NotOnGroupError, ValueError)):
            parts = decode_length_prefixed(encode_message(broadcast))
            body = decode_length_prefixed(parts[2])
            body[3] = b"\xff" * len(body[3])
            decode_message(
                params.group,
                encode_length_prefixed(parts[0], parts[1], encode_length_prefixed(*body)),
            )

    @given(st.binary(min_size=0, max_size=64))
    @settings(max_examples=50, deadline=None)
    def test_random_garbage_never_crashes(self, data):
        group = setup(1.0, 2**-10, group="p64-sim", nb_override=31).group
        with pytest.raises((EncodingError, NotOnGroupError, ValueError)):
            decode_message(group, data)

    @given(st.integers(min_value=0, max_value=2**14), st.data())
    @settings(max_examples=30, deadline=None)
    def test_bitflips_never_crash(self, position, data):
        params = setup(1.0, 2**-10, group="p64-sim", nb_override=31)
        frame = bytearray(encode_message(_sample_coin_message(params, rows=1)))
        index = position % len(frame)
        frame[index] ^= 1 << data.draw(st.integers(min_value=0, max_value=7))
        try:
            restored = decode_message(params.group, bytes(frame))
        except (EncodingError, NotOnGroupError, ValueError, OverflowError):
            return  # rejected, as it should be
        # A surviving decode means the flip hit malleable scalar bytes;
        # the object must still be structurally sound.
        assert isinstance(restored, CoinCommitmentMessage)


class TestNodeFraming:
    def test_params_spec_reproduces_fingerprint(self, params):
        restored = wire.decode_params(wire.encode_params(params))
        assert restored.fingerprint() == params.fingerprint()

    def test_plan_spec_roundtrip(self):
        for plan in (
            AggregationPlan.identity(1),
            AggregationPlan.identity(4),
            AggregationPlan.weighted_sum((1, 2, 4, 8), 15),
        ):
            assert wire.decode_plan(wire.encode_plan(plan)) == plan

    def test_enrollment_roundtrip(self, params):
        broadcast, privates = _sample_enrollment(params)
        frame = wire.encode_enrollment(broadcast, privates)
        restored_broadcast, restored_privates = wire.decode_enrollment(
            params.group, frame
        )
        assert restored_broadcast == broadcast
        assert restored_privates == privates

    def test_rpc_and_reply(self):
        method, parts = wire.decode_rpc(wire.encode_rpc("commit-coins", b"ctx"))
        assert method == "commit-coins" and parts == [b"ctx"]
        ok, parts = wire.decode_reply(wire.encode_reply(b"a", b"b"))
        assert ok and parts == [b"a", b"b"]
        ok, parts = wire.decode_reply(wire.encode_abort_reply("boom"))
        assert not ok and parts == [b"boom"]

    def test_control_frames(self):
        kind, parts = wire.decode_control(wire.encode_control("finalize"))
        assert kind == "finalize" and parts == []
        assert wire.frame_kind(wire.encode_control("setup")) == "ctrl"

    def test_bit_matrix_roundtrip(self):
        bits = [[0, 1, 1], [1, 0, 0]]
        assert wire.decode_bit_matrix(wire.encode_bit_matrix(bits)) == bits

    def test_bit_matrix_rejects_non_bits(self):
        with pytest.raises(EncodingError):
            wire.encode_bit_matrix([[0, 2]])
        frame = wire.encode_bit_matrix([[0, 1]])
        with pytest.raises(EncodingError):
            wire.decode_bit_matrix(frame[:-1])

    def test_frame_kind_rejects_garbage(self):
        with pytest.raises(EncodingError):
            wire.frame_kind(b"\x00\x00\x00\x04junk")

    def test_non_utf8_party_id_raises_encoding_error(self):
        """Contract regression: invalid UTF-8 in an id field must raise
        EncodingError, never UnicodeDecodeError."""
        params = setup(1.0, 2**-10, group="p64-sim", nb_override=31)
        message = _sample_coin_message(params, rows=1)
        parts = decode_length_prefixed(encode_message(message))
        body = decode_length_prefixed(parts[2])
        body[0] = b"\xff\xfe"  # not valid UTF-8
        forged = encode_length_prefixed(parts[0], parts[1], encode_length_prefixed(*body))
        with pytest.raises(EncodingError):
            decode_message(params.group, forged)

    def test_str_and_int_lists(self):
        assert wire.decode_str_list(wire.encode_str_list(["a", "b"])) == ["a", "b"]
        assert wire.decode_int_list(wire.encode_int_list([0, 7, 2**64])) == [0, 7, 2**64]
