"""Transport semantics: ordering, timeouts, accounting, process crossing."""

import threading

import pytest

from repro.errors import ParameterError, ProtocolAbort
from repro.net.transport import (
    InMemoryHub,
    MultiprocessTransport,
    SocketTransport,
    multiprocess_star,
)


class TestInMemory:
    def test_fifo_and_accounting(self):
        hub = InMemoryHub()
        a = hub.endpoint("a")
        b = hub.endpoint("b")
        a.send("b", b"one")
        a.send("b", b"four")
        assert b.recv("a") == b"one"
        assert b.recv("a") == b"four"
        assert a.bytes_sent == 7 and a.frames_sent == 2
        assert b.bytes_received == 7 and b.frames_received == 2
        # The underlying simulator accounts the exact same bytes.
        assert hub.network.bytes_sent["a"] == 7

    def test_timeout_aborts(self):
        hub = InMemoryHub()
        a = hub.endpoint("a")
        hub.endpoint("b")
        with pytest.raises(ProtocolAbort) as err:
            a.recv("b", timeout=0.05)
        assert err.value.party == "b"

    def test_cross_thread_blocking(self):
        hub = InMemoryHub()
        a = hub.endpoint("a")
        b = hub.endpoint("b")
        received = []

        def consumer():
            received.append(b.recv("a", timeout=5.0))

        thread = threading.Thread(target=consumer)
        thread.start()
        a.send("b", b"wake")
        thread.join(timeout=5.0)
        assert received == [b"wake"]

    def test_bytes_only(self):
        hub = InMemoryHub()
        a = hub.endpoint("a")
        hub.endpoint("b")
        with pytest.raises(ParameterError):
            a.send("b", "not-bytes")


class TestMultiprocess:
    def test_star_same_process_roundtrip(self):
        center, peers = multiprocess_star("hub", ["x", "y"])
        peers["x"].send("hub", b"from-x")
        assert center.recv("x") == b"from-x"
        center.send("y", b"to-y")
        assert peers["y"].recv("hub") == b"to-y"
        assert center.bytes_received == 6
        for transport in [center, *peers.values()]:
            transport.close()

    def test_timeout(self):
        center, peers = multiprocess_star("hub", ["x"])
        with pytest.raises(ProtocolAbort):
            center.recv("x", timeout=0.05)
        center.close()
        peers["x"].close()

    def test_unknown_peer(self):
        center, peers = multiprocess_star("hub", ["x"])
        with pytest.raises(ParameterError):
            center.send("nobody", b"hi")
        center.close()
        peers["x"].close()

    def test_cross_process(self):
        from multiprocessing import get_context

        center, peers = multiprocess_star("hub", ["child"])

        def child_main(transport):
            frame = transport.recv("hub", timeout=10.0)
            transport.send("hub", frame[::-1])

        process = get_context("fork").Process(
            target=child_main, args=(peers["child"],), daemon=True
        )
        process.start()
        center.send("child", b"abc")
        assert center.recv("child", timeout=10.0) == b"cba"
        process.join(timeout=10.0)
        center.close()


class TestSocket:
    def test_handshake_and_frames(self):
        listener = SocketTransport.listen("analyst")
        client = SocketTransport.connect("peer-1", "analyst", port=listener.port)
        assert listener.accept(1, timeout=5.0) == ["peer-1"]
        client.send("analyst", b"\x00" * 70000)  # bigger than one TCP segment
        assert listener.recv("peer-1", timeout=5.0) == b"\x00" * 70000
        listener.send("peer-1", b"pong")
        assert client.recv("analyst", timeout=5.0) == b"pong"
        client.close()
        listener.close()

    def test_recv_timeout(self):
        listener = SocketTransport.listen("analyst")
        client = SocketTransport.connect("peer-1", "analyst", port=listener.port)
        listener.accept(1, timeout=5.0)
        with pytest.raises(ProtocolAbort) as err:
            listener.recv("peer-1", timeout=0.05)
        assert err.value.party == "peer-1"
        client.close()
        listener.close()

    def test_closed_peer_aborts(self):
        listener = SocketTransport.listen("analyst")
        client = SocketTransport.connect("peer-1", "analyst", port=listener.port)
        listener.accept(1, timeout=5.0)
        client.close()
        with pytest.raises(ProtocolAbort):
            listener.recv("peer-1", timeout=1.0)
        listener.close()
