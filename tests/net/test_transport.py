"""Transport semantics: ordering, timeouts, accounting, process crossing."""

import socket
import struct
import threading
import time

import pytest

from repro.errors import ParameterError, ProtocolAbort
from repro.net.transport import (
    InMemoryHub,
    MultiprocessTransport,
    SocketTransport,
    multiprocess_star,
)


class TestInMemory:
    def test_fifo_and_accounting(self):
        hub = InMemoryHub()
        a = hub.endpoint("a")
        b = hub.endpoint("b")
        a.send("b", b"one")
        a.send("b", b"four")
        assert b.recv("a") == b"one"
        assert b.recv("a") == b"four"
        assert a.bytes_sent == 7 and a.frames_sent == 2
        assert b.bytes_received == 7 and b.frames_received == 2
        # The underlying simulator accounts the exact same bytes.
        assert hub.network.bytes_sent["a"] == 7

    def test_timeout_aborts(self):
        hub = InMemoryHub()
        a = hub.endpoint("a")
        hub.endpoint("b")
        with pytest.raises(ProtocolAbort) as err:
            a.recv("b", timeout=0.05)
        assert err.value.party == "b"

    def test_cross_thread_blocking(self):
        hub = InMemoryHub()
        a = hub.endpoint("a")
        b = hub.endpoint("b")
        received = []

        def consumer():
            received.append(b.recv("a", timeout=5.0))

        thread = threading.Thread(target=consumer)
        thread.start()
        a.send("b", b"wake")
        thread.join(timeout=5.0)
        assert received == [b"wake"]

    def test_bytes_only(self):
        hub = InMemoryHub()
        a = hub.endpoint("a")
        hub.endpoint("b")
        with pytest.raises(ParameterError):
            a.send("b", "not-bytes")

    def test_timeout_holds_under_unrelated_traffic(self):
        """Every send to any peer wakes the hub condition; the recv
        deadline must be monotonic, not re-armed per wake, or chatter
        between other parties extends the block indefinitely."""
        hub = InMemoryHub()
        a = hub.endpoint("a")
        hub.endpoint("b")
        c = hub.endpoint("c")
        stop = threading.Event()

        def chatter():
            while not stop.is_set():
                c.send("a", b"noise")
                time.sleep(0.02)

        thread = threading.Thread(target=chatter, daemon=True)
        thread.start()
        try:
            start = time.monotonic()
            with pytest.raises(ProtocolAbort):
                a.recv("b", timeout=0.2)
            assert time.monotonic() - start < 1.5
        finally:
            stop.set()
            thread.join(timeout=5.0)


class TestMultiprocess:
    def test_star_same_process_roundtrip(self):
        center, peers = multiprocess_star("hub", ["x", "y"])
        peers["x"].send("hub", b"from-x")
        assert center.recv("x") == b"from-x"
        center.send("y", b"to-y")
        assert peers["y"].recv("hub") == b"to-y"
        assert center.bytes_received == 6
        for transport in [center, *peers.values()]:
            transport.close()

    def test_timeout(self):
        center, peers = multiprocess_star("hub", ["x"])
        with pytest.raises(ProtocolAbort):
            center.recv("x", timeout=0.05)
        center.close()
        peers["x"].close()

    def test_unknown_peer(self):
        center, peers = multiprocess_star("hub", ["x"])
        with pytest.raises(ParameterError):
            center.send("nobody", b"hi")
        center.close()
        peers["x"].close()

    def test_cross_process(self):
        from multiprocessing import get_context

        center, peers = multiprocess_star("hub", ["child"])

        def child_main(transport):
            frame = transport.recv("hub", timeout=10.0)
            transport.send("hub", frame[::-1])

        process = get_context("fork").Process(
            target=child_main, args=(peers["child"],), daemon=True
        )
        process.start()
        center.send("child", b"abc")
        assert center.recv("child", timeout=10.0) == b"cba"
        process.join(timeout=10.0)
        center.close()


class TestSocket:
    def test_handshake_and_frames(self):
        listener = SocketTransport.listen("analyst")
        client = SocketTransport.connect("peer-1", "analyst", port=listener.port)
        assert listener.accept(1, timeout=5.0) == ["peer-1"]
        client.send("analyst", b"\x00" * 70000)  # bigger than one TCP segment
        assert listener.recv("peer-1", timeout=5.0) == b"\x00" * 70000
        listener.send("peer-1", b"pong")
        assert client.recv("analyst", timeout=5.0) == b"pong"
        client.close()
        listener.close()

    def test_recv_timeout(self):
        listener = SocketTransport.listen("analyst")
        client = SocketTransport.connect("peer-1", "analyst", port=listener.port)
        listener.accept(1, timeout=5.0)
        with pytest.raises(ProtocolAbort) as err:
            listener.recv("peer-1", timeout=0.05)
        assert err.value.party == "peer-1"
        client.close()
        listener.close()

    def test_closed_peer_aborts(self):
        listener = SocketTransport.listen("analyst")
        client = SocketTransport.connect("peer-1", "analyst", port=listener.port)
        listener.accept(1, timeout=5.0)
        client.close()
        with pytest.raises(ProtocolAbort):
            listener.recv("peer-1", timeout=1.0)
        listener.close()

    def test_oversized_frame_announcement_aborts(self):
        """The length prefix is untrusted: a header above the cap must
        abort before buffering, not allocate up to 4 GiB."""
        listener = SocketTransport.listen("analyst", max_frame_bytes=1024)
        client = SocketTransport.connect("peer-1", "analyst", port=listener.port)
        listener.accept(1, timeout=5.0)
        client.send("analyst", b"\x00" * 2048)
        with pytest.raises(ProtocolAbort) as err:
            listener.recv("peer-1", timeout=5.0)
        assert "oversized" in str(err.value)
        client.close()
        listener.close()

    def test_bad_utf8_handshake_dropped_not_fatal(self):
        """A non-UTF-8 handshake name kills that connection only; the
        listener keeps accepting and the honest peer still enrolls."""
        listener = SocketTransport.listen("analyst")
        raw = socket.create_connection(("127.0.0.1", listener.port))
        raw.sendall(struct.pack(">I", 2) + b"\xff\xfe")
        honest = SocketTransport.connect("peer-1", "analyst", port=listener.port)
        assert listener.accept(1, timeout=5.0) == ["peer-1"]
        raw.close()
        honest.close()
        listener.close()

    def test_duplicate_name_handshake_dropped_not_fatal(self):
        """A handshake claiming an already-registered name is dropped (a
        squatter cannot abort the listener); later distinct peers still
        get through."""
        listener = SocketTransport.listen("analyst")
        first = SocketTransport.connect("peer-1", "analyst", port=listener.port)
        assert listener.accept(1, timeout=5.0) == ["peer-1"]
        squatter = SocketTransport.connect("peer-1", "analyst", port=listener.port)
        second = SocketTransport.connect("peer-2", "analyst", port=listener.port)
        assert listener.accept(1, timeout=5.0) == ["peer-2"]
        assert listener.dropped_handshakes == ["duplicate name 'peer-1'"]
        listener.send("peer-1", b"still-first")
        assert first.recv("analyst", timeout=5.0) == b"still-first"
        for transport in (first, squatter, second, listener):
            transport.close()

    def test_accept_deadline_is_overall_not_per_connection(self):
        """A peer that connects but never handshakes must not re-arm the
        accept timeout: the whole call fails within the one deadline,
        naming what was dropped."""
        listener = SocketTransport.listen("analyst")
        silent = socket.create_connection(("127.0.0.1", listener.port))
        start = time.monotonic()
        with pytest.raises(ProtocolAbort) as err:
            listener.accept(1, timeout=0.5)
        assert time.monotonic() - start < 3.0
        assert "timed out accepting peers" in str(err.value)
        silent.close()
        listener.close()

    def test_byte_trickle_bounded_by_frame_deadline(self):
        """The recv timeout covers the whole frame under one monotonic
        deadline — a peer trickling one byte per interval must not
        re-arm the window on every recv call."""
        listener = SocketTransport.listen("analyst")
        raw = socket.create_connection(("127.0.0.1", listener.port))
        raw.sendall(struct.pack(">I", 6) + b"peer-1")
        assert listener.accept(1, timeout=5.0) == ["peer-1"]
        raw.sendall(struct.pack(">I", 12) + b"ab")  # 10 bytes outstanding
        stop = threading.Event()

        def trickle():
            for _ in range(10):
                if stop.wait(0.3):
                    return
                try:
                    raw.sendall(b"x")
                except OSError:
                    return

        thread = threading.Thread(target=trickle, daemon=True)
        thread.start()
        try:
            start = time.monotonic()
            with pytest.raises(ProtocolAbort):
                listener.recv("peer-1", timeout=0.5)
            assert time.monotonic() - start < 2.0
        finally:
            stop.set()
            thread.join(timeout=5.0)
            raw.close()
            listener.close()

    def test_unexpected_name_dropped_with_expected_filter(self):
        """With an expected peer set, a handshake outside it is dropped
        and recorded; the expected peer still gets through."""
        listener = SocketTransport.listen("analyst")
        mallory = SocketTransport.connect("mallory", "analyst", port=listener.port)
        honest = SocketTransport.connect("peer-1", "analyst", port=listener.port)
        assert listener.accept(1, timeout=5.0, expected=["peer-1"]) == ["peer-1"]
        assert listener.dropped_handshakes == ["unexpected name 'mallory'"]
        for transport in (mallory, honest, listener):
            transport.close()

    def test_oversized_handshake_dropped(self):
        """The pre-auth handshake is capped far below max_frame_bytes —
        a 256 MiB 'name' announcement is dropped, not buffered."""
        listener = SocketTransport.listen("analyst")
        greedy = socket.create_connection(("127.0.0.1", listener.port))
        greedy.sendall(struct.pack(">I", 1 << 28) + b"x" * 64)
        honest = SocketTransport.connect("peer-1", "analyst", port=listener.port)
        assert listener.accept(1, timeout=5.0) == ["peer-1"]
        assert listener.dropped_handshakes == ["<unreadable handshake>"]
        greedy.close()
        honest.close()
        listener.close()
