"""Distributed role nodes: byte-identical releases and wire-level attacks.

The acceptance bar of the redesign: a 2-server multi-client session run
as separate OS processes produces a release byte-identical to the
in-process :class:`repro.api.Session` under seeded RNG, over both
``MultiprocessTransport`` and ``SocketTransport``; and a tampered frame
is rejected with the correct party named by the existing
snapshot-replay pinpointing.
"""

import functools
import threading

import pytest

from repro.api.queries import BoundedSumQuery, CountQuery, HistogramQuery
from repro.api.session import Session
from repro.core.messages import ClientStatus, ProverStatus
from repro.core.prover import OutputTamperingProver
from repro.crypto.serialization import encode_message
from repro.net.nodes import AnalystNode, ClientRunner, ServerNode
from repro.net.serve import run_distributed_session
from repro.net.transport import InMemoryHub, Transport, multiprocess_star
from repro.utils.rng import SeededRNG

DELTA = 2**-10


def in_process_release_bytes(query, values, *, seed, num_servers=2, nb=32, chunk=None):
    session = Session(
        query,
        num_provers=num_servers,
        group="p64-sim",
        nb_override=nb,
        chunk_size=chunk,
        rng=SeededRNG(seed),
    )
    session.submit(values)
    return encode_message(session.release().release)


class TestEquivalence:
    @pytest.mark.parametrize("transport", ["memory", "multiprocess", "socket"])
    def test_two_server_count_session_byte_identical(self, transport):
        query = CountQuery(epsilon=1.0, delta=DELTA)
        values = [1, 0, 1, 1, 0, 1, 1]
        outcome = run_distributed_session(
            query,
            values,
            transport=transport,
            num_servers=2,
            group="p64-sim",
            nb_override=32,
            seed="equiv",
        )
        assert outcome["accepted"]
        assert outcome["byte_identical"]
        assert encode_message(outcome["release"]) == in_process_release_bytes(
            query, values, seed="equiv"
        )

    def test_streamed_histogram_byte_identical_multiprocess(self):
        query = HistogramQuery(bins=3, epsilon=1.0, delta=DELTA)
        values = [0, 1, 2, 1, 1, 0]
        outcome = run_distributed_session(
            query,
            values,
            transport="multiprocess",
            num_servers=2,
            group="p64-sim",
            nb_override=32,
            chunk_size=8,
            seed="equiv-hist",
        )
        assert outcome["accepted"] and outcome["byte_identical"]

    def test_bounded_sum_single_server_memory(self):
        query = BoundedSumQuery(value_bits=3, epsilon=2.0, delta=DELTA)
        values = [5, 2, 7, 0]
        outcome = run_distributed_session(
            query,
            values,
            transport="memory",
            num_servers=1,
            group="p64-sim",
            nb_override=16,
            seed="equiv-sum",
        )
        assert outcome["accepted"] and outcome["byte_identical"]

    def test_unseeded_run_accepts(self):
        outcome = run_distributed_session(
            CountQuery(epsilon=1.0, delta=DELTA),
            [1, 0, 1],
            transport="memory",
            num_servers=2,
            nb_override=16,
            seed=None,
        )
        assert outcome["accepted"]
        assert "byte_identical" not in outcome

    def test_front_end_traffic_accounted(self):
        outcome = run_distributed_session(
            CountQuery(epsilon=1.0, delta=DELTA),
            [1, 0, 1],
            transport="memory",
            num_servers=2,
            nb_override=16,
            seed="traffic",
        )
        assert outcome["frontend_bytes_sent"] > 0
        assert outcome["frontend_bytes_received"] > outcome["frontend_bytes_sent"]


class _TamperFirstLargeReply(Transport):
    """Wraps a transport; bit-flips the first large frame from ``target``.

    The flip lands in the trailing scalar of the last Σ-OR proof of the
    prover's coin message — structurally valid, cryptographically wrong —
    modelling in-flight corruption or a tampering relay.
    """

    def __init__(self, inner: Transport, target: str, threshold: int = 800) -> None:
        super().__init__(inner.name)
        self._inner = inner
        self._target = target
        self._threshold = threshold
        self.tampered = 0

    def _send(self, peer, frame):
        self._inner.send(peer, frame)

    def _recv(self, peer, timeout):
        frame = self._inner.recv(peer, timeout)
        if peer == self._target and not self.tampered and len(frame) > self._threshold:
            frame = frame[:-1] + bytes([frame[-1] ^ 0x01])
            self.tampered += 1
        return frame

    def close(self):
        self._inner.close()


class TestWireTampering:
    def _run_tampered_prover_session(self, chunk_size):
        """Multiprocess session; prover-1's first coin frame is bit-flipped."""
        from multiprocessing import get_context

        from repro.net.serve import _clients_main_pipes, _server_main_pipes

        query = CountQuery(epsilon=1.0, delta=DELTA)
        values = [1, 0, 1, 1]
        seed = "tamper"
        server_names = ["prover-0", "prover-1"]
        center, peers = multiprocess_star("analyst", server_names + ["clients"])
        context = get_context("fork")
        processes = [
            context.Process(
                target=_server_main_pipes, args=(peers[name], seed, name), daemon=True
            )
            for name in server_names
        ]
        processes.append(
            context.Process(
                target=_clients_main_pipes,
                args=(peers["clients"], query, values, seed),
                daemon=True,
            )
        )
        for process in processes:
            process.start()
        for peer in peers.values():
            peer.close()
        tampering = _TamperFirstLargeReply(center, "prover-1")
        analyst = AnalystNode(
            query,
            tampering,
            server_names,
            group="p64-sim",
            nb_override=32,
            chunk_size=chunk_size,
            rng=SeededRNG(seed),
            timeout=60.0,
        )
        result = analyst.run()
        for process in processes:
            process.join(timeout=30.0)
        assert tampering.tampered == 1, "tamper hook never fired"
        return result

    @pytest.mark.parametrize("chunk_size", [8, None])
    def test_tampered_coin_frame_names_the_prover(self, chunk_size):
        """Bit-flipped proof bytes → rejected, prover-1 pinpointed.

        ``chunk_size=8`` exercises the streamed snapshot-replay path,
        ``None`` the buffered batch-then-replay path; both must name the
        exact coin in the audit note.
        """
        result = self._run_tampered_prover_session(chunk_size)
        release = result.release
        assert not release.accepted
        assert release.audit.provers["prover-1"] is ProverStatus.BAD_COIN_PROOF
        assert release.audit.provers["prover-0"] is ProverStatus.HONEST
        assert any(
            "prover-1" in note and "coin proof rejected at coin" in note
            for note in release.audit.notes
        ), release.audit.notes

    def test_tampered_enrollment_names_the_client(self):
        """A bit-flip inside a client's validity proof excludes exactly
        that client (INVALID_PROOF); the session still releases."""
        from repro.utils.encoding import decode_length_prefixed, encode_length_prefixed

        def tamper(index, frame):
            if index != 2:
                return frame
            parts = decode_length_prefixed(frame)
            # parts[1] is the broadcast frame; its trailing bytes are the
            # last scalar of the validity proof.
            broadcast = parts[1]
            parts[1] = broadcast[:-1] + bytes([broadcast[-1] ^ 0x01])
            return encode_length_prefixed(*parts)

        release = self._run_memory_session_with_client_tamper(tamper)
        assert release.accepted  # corrupt clients are excluded, not fatal
        assert release.audit.clients["client-2"] is ClientStatus.INVALID_PROOF
        assert release.audit.clients["client-0"] is ClientStatus.VALID

    def test_tampered_share_message_names_the_client(self):
        """A bit-flip in a private share opening → BAD_OPENING for that
        client via the receiving prover's complaint."""
        def tamper(index, frame):
            if index != 1:
                return frame
            return frame[:-1] + bytes([frame[-1] ^ 0x01])

        release = self._run_memory_session_with_client_tamper(tamper)
        assert release.accepted
        assert release.audit.clients["client-1"] is ClientStatus.BAD_OPENING

    def test_undecodable_enrollment_dropped_not_fatal(self):
        """A frame corrupted beyond decoding (truncated mid-structure)
        drops that enrollment with an audit note; the session survives."""
        def tamper(index, frame):
            return frame[:-40] if index == 2 else frame

        release = self._run_memory_session_with_client_tamper(tamper)
        assert release.accepted
        assert "client-2" not in release.audit.clients
        assert any("dropped" in note for note in release.audit.notes)
        assert release.audit.clients["client-3"] is ClientStatus.VALID

    def test_short_broadcast_enrollment_dropped_not_fatal(self):
        """A well-formed hostile enrollment whose broadcast declares
        fewer share-commitment rows than K provers is rejected at ingest
        with an audit note — it must never reach the share-check RPCs,
        where an IndexError would abort the session blaming the honest
        prover."""
        import dataclasses

        from repro.net import wire

        query = CountQuery(epsilon=1.0, delta=DELTA)
        params = query.build_params(num_provers=2, group="p64-sim", nb_override=16)

        def tamper(index, frame):
            if index != 2:
                return frame
            broadcast, privates = wire.decode_enrollment(params.group, frame)
            hostile = dataclasses.replace(
                broadcast, share_commitments=broadcast.share_commitments[:1]
            )
            return wire.encode_enrollment(hostile, privates)

        release = self._run_memory_session_with_client_tamper(tamper)
        assert release.accepted
        assert "client-2" not in release.audit.clients
        assert any(
            "rejected enrollment" in note and "client-2" in note
            for note in release.audit.notes
        ), release.audit.notes
        assert all(
            status is ProverStatus.HONEST
            for status in release.audit.provers.values()
        )

    def test_mismatched_share_id_enrollment_dropped_not_fatal(self):
        """A private share message whose client_id differs from its
        broadcast would raise ParameterError inside the prover's check
        (blaming the honest prover); it must be rejected at ingest."""
        import dataclasses

        from repro.net import wire

        query = CountQuery(epsilon=1.0, delta=DELTA)
        params = query.build_params(num_provers=2, group="p64-sim", nb_override=16)

        def tamper(index, frame):
            if index != 2:
                return frame
            broadcast, privates = wire.decode_enrollment(params.group, frame)
            privates[0] = dataclasses.replace(privates[0], client_id="evil")
            return wire.encode_enrollment(broadcast, privates)

        release = self._run_memory_session_with_client_tamper(tamper)
        assert release.accepted
        assert "client-2" not in release.audit.clients
        assert any(
            "rejected enrollment" in note and "client-2" in note
            for note in release.audit.notes
        ), release.audit.notes

    def test_duplicate_client_id_dropped_not_fatal(self):
        """A replayed enrollment (same client id twice) is rejected with
        an audit note instead of crashing the front-end."""
        frames = {}

        def tamper(index, frame):
            frames[index] = frame
            return frames[0] if index == 2 else frame  # replay client-0

        release = self._run_memory_session_with_client_tamper(tamper)
        assert release.accepted
        assert any("rejected enrollment" in note for note in release.audit.notes)
        assert release.audit.clients["client-0"] is ClientStatus.VALID

    def _run_memory_session_with_client_tamper(self, tamper):
        query = CountQuery(epsilon=1.0, delta=DELTA)
        hub = InMemoryHub()
        seed = "client-tamper"
        server_names = ["prover-0", "prover-1"]
        threads = []
        for name in server_names:
            node = ServerNode(hub.endpoint(name), SeededRNG(seed).fork(name))
            threads.append(threading.Thread(target=node.run, daemon=True))
        runner = ClientRunner(
            hub.endpoint("clients"),
            query,
            [1, 0, 1, 1],
            rng=SeededRNG(seed),
            tamper=tamper,
        )
        threads.append(threading.Thread(target=runner.run, daemon=True))
        for thread in threads:
            thread.start()
        analyst = AnalystNode(
            query,
            hub.endpoint("analyst"),
            server_names,
            group="p64-sim",
            nb_override=16,
            rng=SeededRNG(seed),
        )
        result = analyst.run()
        for thread in threads:
            thread.join(timeout=10.0)
        return result.release


class TestRemoteProverRobustness:
    def _proxy(self):
        from repro.net.nodes import RemoteProver

        query = CountQuery(epsilon=1.0, delta=DELTA)
        params = query.build_params(num_provers=1, group="p64-sim", nb_override=16)
        hub = InMemoryHub()
        analyst = hub.endpoint("analyst")
        server = hub.endpoint("prover-0")
        return RemoteProver("prover-0", analyst, params, timeout=5.0), server

    def test_garbage_reply_aborts_with_server_named(self):
        """An undecodable reply frame is the server's fault: ProtocolAbort
        naming it (so the engine records ABORTED), never a raw
        EncodingError crashing the front-end."""
        from repro.errors import ProtocolAbort

        proxy, server = self._proxy()
        server.send("analyst", b"garbage")
        with pytest.raises(ProtocolAbort) as err:
            proxy.begin_coin_stream(b"ctx")
        assert err.value.party == "prover-0"

    def test_garbage_message_in_ok_reply_aborts_with_server_named(self):
        from repro.errors import ProtocolAbort
        from repro.net import wire

        proxy, server = self._proxy()
        server.send("analyst", wire.encode_reply(b"not-a-message"))
        with pytest.raises(ProtocolAbort) as err:
            proxy.finish_output()
        assert err.value.party == "prover-0"


class TestMorraHiding:
    def test_sample_rpc_reveals_only_a_count(self):
        """The morra-sample reply must not carry the server's secret
        contributions — only their count.  Shipping the values would let
        a malicious front-end see every contribution before the commit
        round, voiding the commit-reveal's hiding."""
        from repro.net import wire
        from repro.utils.encoding import int_to_bytes

        query = CountQuery(epsilon=1.0, delta=DELTA)
        params = query.build_params(num_provers=1, group="p64-sim", nb_override=16)
        hub = InMemoryHub()
        node = ServerNode(hub.endpoint("prover-0"), SeededRNG("morra").fork("prover-0"))
        thread = threading.Thread(target=node.run, daemon=True)
        thread.start()
        analyst = hub.endpoint("analyst")
        analyst.send(
            "prover-0",
            wire.encode_control(
                "setup",
                wire.encode_params(params),
                wire.encode_plan(query.build_plan()),
                b"prover-0",
            ),
        )
        ok, _ = wire.decode_reply(analyst.recv("prover-0", 10.0))
        assert ok
        analyst.send(
            "prover-0",
            wire.encode_rpc("morra-sample", int_to_bytes(1009), int_to_bytes(5)),
        )
        ok, parts = wire.decode_reply(analyst.recv("prover-0", 10.0))
        assert ok
        assert parts == [int_to_bytes(5)]
        analyst.send("prover-0", wire.encode_control("shutdown"))
        analyst.recv("prover-0", 10.0)
        thread.join(timeout=10.0)


class TestCheatingProverOverTheWire:
    def test_output_tampering_prover_caught(self):
        """A server hosting OutputTamperingProver fails Line 13 across the
        wire exactly as in process."""
        query = CountQuery(epsilon=1.0, delta=DELTA)
        hub = InMemoryHub()
        seed = "cheat"
        server_names = ["prover-0", "prover-1"]
        factories = {
            "prover-0": None,
            "prover-1": functools.partial(OutputTamperingProver, bias=7),
        }
        threads = []
        for name in server_names:
            node = ServerNode(
                hub.endpoint(name),
                SeededRNG(seed).fork(name),
                prover_factory=factories[name],
            )
            threads.append(threading.Thread(target=node.run, daemon=True))
        runner = ClientRunner(
            hub.endpoint("clients"), query, [1, 0, 1], rng=SeededRNG(seed)
        )
        threads.append(threading.Thread(target=runner.run, daemon=True))
        for thread in threads:
            thread.start()
        analyst = AnalystNode(
            query,
            hub.endpoint("analyst"),
            server_names,
            group="p64-sim",
            nb_override=16,
            rng=SeededRNG(seed),
        )
        release = analyst.run().release
        for thread in threads:
            thread.join(timeout=10.0)
        assert not release.accepted
        assert release.audit.provers["prover-1"] is ProverStatus.FAILED_FINAL_CHECK
        assert release.audit.provers["prover-0"] is ProverStatus.HONEST
        # The client runner received the same (rejected) release.
        assert runner.release is not None
        assert encode_message(runner.release) == encode_message(release)
