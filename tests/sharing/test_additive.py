"""Additive secret sharing: reconstruction, linearity, hiding shape."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import ParameterError
from repro.sharing.additive import AdditiveSharing, reconstruct_additive, share_additive
from repro.utils.rng import SeededRNG

Q = 2**61 - 1


class TestShareReconstruct:
    @given(
        value=st.integers(min_value=0, max_value=Q - 1),
        parties=st.integers(min_value=1, max_value=8),
    )
    @settings(max_examples=40)
    def test_roundtrip(self, value, parties):
        shares = share_additive(value, parties, Q, SeededRNG(f"{value}-{parties}"))
        assert len(shares) == parties
        assert reconstruct_additive(shares, Q) == value

    def test_single_party_is_plaintext(self):
        assert share_additive(42, 1, Q, SeededRNG("s")) == [42]

    def test_invalid_args(self):
        with pytest.raises(ParameterError):
            share_additive(1, 0, Q)
        with pytest.raises(ParameterError):
            share_additive(1, 2, 1)
        with pytest.raises(ParameterError):
            reconstruct_additive([], Q)

    def test_linearity(self):
        """Sharing is linear: share-wise sums reconstruct to the value sum."""
        rng = SeededRNG("lin")
        a = share_additive(10, 3, Q, rng)
        b = share_additive(32, 3, Q, rng)
        summed = [(x + y) % Q for x, y in zip(a, b)]
        assert reconstruct_additive(summed, Q) == 42

    def test_single_share_marginal_spread(self):
        """Any one share should be spread over the field (hiding): sharing
        the SAME value many times yields distinct first shares."""
        rng = SeededRNG("spread")
        firsts = {share_additive(7, 2, Q, rng)[0] for _ in range(50)}
        assert len(firsts) == 50


class TestAdditiveSharingObject:
    def test_share_vector_layout(self):
        scheme = AdditiveSharing(parties=3, q=Q)
        per_party = scheme.share_vector([5, 6, 7], SeededRNG("v"))
        assert len(per_party) == 3
        assert all(len(row) == 3 for row in per_party)
        for j, expected in enumerate([5, 6, 7]):
            assert sum(per_party[k][j] for k in range(3)) % Q == expected

    def test_reconstruct_requires_all(self):
        scheme = AdditiveSharing(parties=3, q=Q)
        shares = scheme.share(9, SeededRNG("r"))
        with pytest.raises(ParameterError):
            scheme.reconstruct(shares[:2])
        assert scheme.reconstruct(shares) == 9
