"""Shamir sharing: thresholds, interpolation, linearity."""

import itertools

import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import ParameterError
from repro.sharing.shamir import ShamirShare, ShamirSharing
from repro.utils.rng import SeededRNG

Q = 2**61 - 1


class TestShamir:
    @given(
        value=st.integers(min_value=0, max_value=Q - 1),
        threshold=st.integers(min_value=1, max_value=4),
        extra=st.integers(min_value=0, max_value=3),
    )
    @settings(max_examples=30)
    def test_roundtrip(self, value, threshold, extra):
        parties = threshold + extra
        scheme = ShamirSharing(threshold, parties, Q)
        shares = scheme.share(value, SeededRNG(f"{value}-{threshold}-{extra}"))
        assert scheme.reconstruct(shares) == value

    def test_any_threshold_subset_reconstructs(self):
        scheme = ShamirSharing(3, 5, Q)
        shares = scheme.share(777, SeededRNG("sub"))
        for subset in itertools.combinations(shares, 3):
            assert scheme.reconstruct(list(subset)) == 777

    def test_below_threshold_rejected(self):
        scheme = ShamirSharing(3, 5, Q)
        shares = scheme.share(777, SeededRNG("below"))
        with pytest.raises(ParameterError):
            scheme.reconstruct(shares[:2])

    def test_duplicate_indices_do_not_count(self):
        scheme = ShamirSharing(2, 3, Q)
        shares = scheme.share(5, SeededRNG("dup"))
        with pytest.raises(ParameterError):
            scheme.reconstruct([shares[0], shares[0]])

    def test_linearity(self):
        scheme = ShamirSharing(2, 3, Q)
        a = scheme.share(100, SeededRNG("a"))
        b = scheme.share(23, SeededRNG("b"))
        summed = scheme.add_shares(a, b)
        assert scheme.reconstruct(summed) == 123

    def test_add_misaligned_rejected(self):
        scheme = ShamirSharing(2, 3, Q)
        a = scheme.share(1, SeededRNG("a"))
        b = [ShamirShare(s.index + 1, s.value) for s in scheme.share(2, SeededRNG("b"))]
        with pytest.raises(ParameterError):
            scheme.add_shares(a, b[: len(a)])

    def test_invalid_parameters(self):
        with pytest.raises(ParameterError):
            ShamirSharing(0, 3, Q)
        with pytest.raises(ParameterError):
            ShamirSharing(4, 3, Q)
        with pytest.raises(ParameterError):
            ShamirSharing(2, 7, 5)  # field too small

    def test_below_threshold_shares_hide(self):
        """t-1 shares of different secrets look alike: compare share-1
        marginals for two different secrets (coarse spread check)."""
        scheme = ShamirSharing(2, 2, Q)
        rng = SeededRNG("hide")
        ones = {scheme.share(0, rng)[0].value % 1000 for _ in range(60)}
        assert len(ones) > 40  # spread out, not concentrated
