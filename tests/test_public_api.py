"""Public API surface: imports, docstrings, the README quickstart."""

import importlib
import re
from pathlib import Path

import pytest

import repro

README = Path(__file__).resolve().parent.parent / "README.md"


class TestPublicApi:
    def test_all_exports_resolve(self):
        for name in repro.__all__:
            assert hasattr(repro, name), name

    def test_version(self):
        assert repro.__version__ == "2.0.0"

    def test_query_api_is_advertised(self):
        for name in ("Session", "CountQuery", "HistogramQuery",
                     "BoundedSumQuery", "ComposedQuery", "Phase"):
            assert name in repro.__all__, name

    @pytest.mark.parametrize(
        "module",
        [
            "repro.api", "repro.core", "repro.crypto", "repro.crypto.sigma",
            "repro.dp", "repro.mpc", "repro.sharing", "repro.baselines",
            "repro.attacks", "repro.analysis", "repro.bench", "repro.utils",
        ],
    )
    def test_subpackage_exports_resolve(self, module):
        mod = importlib.import_module(module)
        assert mod.__doc__, f"{module} missing docstring"
        for name in getattr(mod, "__all__", []):
            assert hasattr(mod, name), f"{module}.{name}"

    def test_quickstart_from_readme(self):
        """Execute the README's quickstart snippet *verbatim*.

        The snippet is extracted from README.md, so docs and behavior
        cannot drift apart.
        """
        text = README.read_text()
        blocks = re.findall(r"```python\n(.*?)```", text, flags=re.DOTALL)
        assert blocks, "README.md lost its python quickstart block"
        snippet = blocks[0]
        assert "ComposedQuery" in snippet and "session.release()" in snippet
        namespace: dict = {}
        exec(compile(snippet, str(README), "exec"), namespace)  # noqa: S102
        result = namespace["result"]
        assert result.accepted
        assert len(result.results) == 3

    def test_docstring_pointers_exist(self):
        """The package docstring names README.md and DESIGN.md — both must
        exist (they were once dangling references)."""
        root = README.parent
        for name in ("README.md", "DESIGN.md"):
            assert name in repro.__doc__
            assert (root / name).is_file(), name

    def test_paper_attribution(self):
        """The source paper is Narayan, Feldman, Papadimitriou & Haeberlen
        (EuroSys 2015) — not Biswas & Cormode."""
        assert "Narayan" in repro.__doc__
        assert "EuroSys 2015" in repro.__doc__
        assert "Biswas" not in repro.__doc__


class TestCli:
    def test_list(self, capsys):
        from repro.cli import main

        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "table1" in out and "separation" in out and "streaming" in out

    def test_run_separation(self, capsys):
        from repro.cli import main

        assert main(["separation"]) == 0
        assert "Pedersen" in capsys.readouterr().out

    def test_unknown_experiment(self):
        from repro.cli import main

        with pytest.raises(SystemExit):
            main(["nope"])
