"""Public API surface: imports, docstrings, the README quickstart."""

import importlib

import pytest

import repro


class TestPublicApi:
    def test_all_exports_resolve(self):
        for name in repro.__all__:
            assert hasattr(repro, name), name

    def test_version(self):
        assert repro.__version__ == "1.0.0"

    @pytest.mark.parametrize(
        "module",
        [
            "repro.core", "repro.crypto", "repro.crypto.sigma", "repro.dp",
            "repro.mpc", "repro.sharing", "repro.baselines", "repro.attacks",
            "repro.analysis", "repro.bench", "repro.utils",
        ],
    )
    def test_subpackage_exports_resolve(self, module):
        mod = importlib.import_module(module)
        assert mod.__doc__, f"{module} missing docstring"
        for name in getattr(mod, "__all__", []):
            assert hasattr(mod, name), f"{module}.{name}"

    def test_quickstart_from_readme(self):
        """The exact snippet advertised in the package docstring."""
        from repro import setup, VerifiableBinomialProtocol

        params = setup(epsilon=1.0, delta=2**-10, num_provers=1, group="p64-sim",
                       nb_override=32)
        protocol = VerifiableBinomialProtocol(params)
        result = protocol.run_bits([1, 0, 1, 1, 0, 1])
        assert result.release.accepted
        assert isinstance(result.release.scalar_estimate, float)


class TestCli:
    def test_list(self, capsys):
        from repro.cli import main

        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "table1" in out and "separation" in out

    def test_run_separation(self, capsys):
        from repro.cli import main

        assert main(["separation"]) == 0
        assert "Pedersen" in capsys.readouterr().out

    def test_unknown_experiment(self):
        from repro.cli import main

        with pytest.raises(SystemExit):
            main(["nope"])
