"""The VerifiableHistogram high-level API (the election workload)."""

import pytest

from repro.core.histogram import VerifiableHistogram
from repro.core.params import setup
from repro.core.prover import OutputTamperingProver, Prover
from repro.errors import ParameterError
from repro.utils.rng import SeededRNG

GROUP = "p64-sim"


def make_hist(bins=3, k=2, nb=16, seed="hist"):
    params = setup(1.0, 2**-10, num_provers=k, dimension=bins, group=GROUP, nb_override=nb)
    return VerifiableHistogram(
        bins, params.epsilon, params.delta, params=params, rng=SeededRNG(seed)
    )


class TestHistogram:
    def test_counts_near_truth(self):
        hist = make_hist(seed="counts")
        choices = [0] * 10 + [1] * 5 + [2] * 2
        release, result = hist.run(choices)
        assert release.accepted
        true = [10, 5, 2]
        for m in range(3):
            # noise per bin: sum of two Binomial(nb, 1/2) minus mean, within support
            assert abs(release.counts[m] - true[m]) <= hist.params.nb * hist.params.num_provers / 2 + 1

    def test_plurality_winner(self):
        hist = make_hist(seed="winner", nb=8)
        choices = [0] * 30 + [1] * 3 + [2] * 2  # wide margin beats noise
        release, _ = hist.run(choices)
        assert release.argmax() == 0

    def test_invalid_choice_rejected(self):
        hist = make_hist(seed="inv")
        with pytest.raises(ParameterError):
            hist.run([0, 5])

    def test_needs_two_bins(self):
        with pytest.raises(ParameterError):
            VerifiableHistogram(1, 1.0, 2**-10)

    def test_params_dimension_must_match(self):
        params = setup(1.0, 2**-10, dimension=2, group=GROUP, nb_override=16)
        with pytest.raises(ParameterError):
            VerifiableHistogram(3, 1.0, 2**-10, params=params)

    def test_privacy_note_mentions_composition(self):
        hist = make_hist()
        assert "composition" in hist.privacy_note

    def test_cheating_prover_rejects_release(self):
        params = setup(1.0, 2**-10, num_provers=2, dimension=2, group=GROUP, nb_override=12)
        provers = [
            Prover("prover-0", params, SeededRNG("p0")),
            OutputTamperingProver("prover-1", params, SeededRNG("p1"), bias=4),
        ]
        hist = VerifiableHistogram(
            2, params.epsilon, params.delta, params=params, provers=provers,
            rng=SeededRNG("cheat"),
        )
        release, result = hist.run([0, 1, 0])
        assert not release.accepted
