"""Batched public verification: equivalence with, and fallback to, the
sequential per-proof path.

The verifier folds all Σ-OR equations into one random linear combination
by default; these tests pin down that (a) batch and sequential verifiers
accept/reject exactly the same runs, (b) a batch rejection still
pinpoints the offending proof/client/coordinate in the audit record, and
(c) the cross-prover aggregator isolates cheaters without penalizing
honest provers in the same batch.
"""

from __future__ import annotations

import dataclasses

import pytest

from repro.core.client import Client
from repro.core.messages import ClientStatus, CoinCommitmentMessage, ProverStatus
from repro.core.params import setup
from repro.core.prover import Prover, broadcast_context_digest
from repro.core.protocol import VerifiableBinomialProtocol
from repro.core.verifier import PublicVerifier
from repro.crypto.sigma.or_bit import BitProof
from repro.utils.rng import SeededRNG

NB = 16


def make_params(dimension=1, num_provers=1, group="p64-sim"):
    return setup(
        1.0, 2**-10, group=group, nb_override=NB,
        dimension=dimension, num_provers=num_provers,
    )


def coin_message(params, name="prover-0", seed="coins", context=b"ctx"):
    prover = Prover(name, params, SeededRNG(seed))
    return prover.commit_coins(context)


def tamper_coin(message: CoinCommitmentMessage, j: int, m: int, q: int):
    proof = message.proofs[j][m]
    bad = BitProof(proof.d0, proof.d1, proof.e0, proof.e1, (proof.v0 + 1) % q, proof.v1)
    proofs = [list(row) for row in message.proofs]
    proofs[j][m] = bad
    return dataclasses.replace(
        message, proofs=tuple(tuple(row) for row in proofs)
    )


class TestCoinBatching:
    def test_honest_message_accepted_both_paths(self):
        params = make_params(dimension=2)
        message = coin_message(params)
        for batch in (True, False):
            verifier = PublicVerifier(params, SeededRNG("v"), batch=batch)
            assert verifier.verify_coin_commitments(message, b"ctx")
            assert verifier.audit.provers == {}

    def test_tampered_message_rejected_and_pinpointed(self):
        params = make_params()
        message = tamper_coin(coin_message(params), 7, 0, params.q)
        for batch in (True, False):
            verifier = PublicVerifier(params, SeededRNG("v"), batch=batch)
            assert not verifier.verify_coin_commitments(message, b"ctx")
            assert verifier.audit.provers["prover-0"] is ProverStatus.BAD_COIN_PROOF
            assert any("coin 7" in note for note in verifier.audit.notes)

    def test_malformed_message_rejected(self):
        params = make_params()
        message = coin_message(params)
        truncated = dataclasses.replace(
            message,
            commitments=message.commitments[:-1],
            proofs=message.proofs[:-1],
        )
        verifier = PublicVerifier(params, SeededRNG("v"))
        assert not verifier.verify_coin_commitments(truncated, b"ctx")
        assert any("malformed" in note for note in verifier.audit.notes)

    def test_cross_prover_batch_isolates_cheater(self):
        params = make_params(num_provers=3)
        honest_a = coin_message(params, "prover-0", seed="a")
        cheater = tamper_coin(coin_message(params, "prover-1", seed="b"), 3, 0, params.q)
        honest_b = coin_message(params, "prover-2", seed="c")
        verifier = PublicVerifier(params, SeededRNG("v"))
        results = verifier.verify_all_coin_commitments(
            [honest_a, cheater, honest_b], b"ctx"
        )
        assert results == {"prover-0": True, "prover-1": False, "prover-2": True}
        assert verifier.audit.provers == {"prover-1": ProverStatus.BAD_COIN_PROOF}
        assert any("coin 3" in note for note in verifier.audit.notes)

    def test_cross_prover_batch_all_honest_single_check(self):
        params = make_params(num_provers=2)
        messages = [
            coin_message(params, f"prover-{k}", seed=f"h{k}") for k in range(2)
        ]
        verifier = PublicVerifier(params, SeededRNG("v"))
        results = verifier.verify_all_coin_commitments(messages, b"ctx")
        assert all(results.values())


class TestPredictableGammaForgery:
    """Why auditors must not batch: with a *public* RNG seed the RLC
    weights are predictable, and two tampered proofs can cancel in the
    weighted product.  The sequential path (which ``replay_audit`` and
    third-party replicas now use) rejects the same forgery."""

    def _forge(self, params, seed):
        message = coin_message(params, seed="forge")
        stream = SeededRNG(seed)
        gamma_a = stream.randbits(128)  # proof (0,0): branch-0 weight
        stream.randbits(128)
        gamma_b = stream.randbits(128)  # proof (1,0): branch-0 weight
        q = params.q
        delta_a = 1
        delta_b = (-gamma_a * pow(gamma_b, -1, q)) % q
        proofs = [list(row) for row in message.proofs]
        for j, delta in ((0, delta_a), (1, delta_b)):
            p = proofs[j][0]
            proofs[j][0] = BitProof(p.d0, p.d1, p.e0, p.e1, (p.v0 + delta) % q, p.v1)
        return dataclasses.replace(
            message, proofs=tuple(tuple(row) for row in proofs)
        )

    def test_sequential_auditor_rejects_gamma_cancellation(self):
        params = make_params()
        seed = "public-auditor"
        forged = self._forge(params, seed)
        # The batched check with a predictable γ stream is fooled — this
        # is the attack auditors must not be exposed to...
        batched = PublicVerifier(
            params, SeededRNG(seed), batch=True, gamma_rng=SeededRNG(seed)
        )
        assert batched.verify_coin_commitments(forged, b"ctx")
        # ...and the sequential auditor path is immune.
        sequential = PublicVerifier(params, SeededRNG(seed), batch=False)
        assert not sequential.verify_coin_commitments(forged, b"ctx")
        assert any("coin 0" in note for note in sequential.audit.notes)

    def test_default_gammas_are_not_the_protocol_stream(self):
        """A seeded protocol RNG must not determine the batch weights."""
        params = make_params()
        verifier = PublicVerifier(params, SeededRNG("public-seed"))
        assert verifier.gamma_rng is not verifier.rng
        # The forgery crafted against the seeded stream fails against the
        # default (system-randomness) gammas.
        forged = self._forge(params, "public-seed")
        assert not verifier.verify_coin_commitments(forged, b"ctx")


class TestClientBatching:
    def _broadcasts(self, params, vectors):
        out = []
        for i, vector in enumerate(vectors):
            client = Client(f"client-{i}", vector, SeededRNG(f"c{i}"))
            broadcast, _ = client.submit(params)
            out.append(broadcast)
        return out

    @pytest.mark.parametrize("dimension", [1, 4])
    def test_honest_clients_all_valid(self, dimension):
        params = make_params(dimension=dimension)
        vector = [1] + [0] * (dimension - 1)
        broadcasts = self._broadcasts(params, [vector] * 4)
        for batch in (True, False):
            verifier = PublicVerifier(params, SeededRNG("v"), batch=batch)
            assert len(verifier.validate_clients(broadcasts)) == 4

    @pytest.mark.parametrize("dimension", [1, 3])
    def test_forged_proof_only_taints_cheater(self, dimension):
        params = make_params(dimension=dimension)
        vector = [1] + [0] * (dimension - 1)
        broadcasts = self._broadcasts(params, [vector] * 3)
        # Graft client-2's proof onto client-1's commitments: the
        # challenge binds to the commitments, so the proof cannot verify.
        forged = dataclasses.replace(
            broadcasts[1], validity_proof=broadcasts[2].validity_proof
        )
        batch = [broadcasts[0], forged, broadcasts[2]]
        for use_batch in (True, False):
            verifier = PublicVerifier(params, SeededRNG("v"), batch=use_batch)
            valid = verifier.validate_clients(batch)
            assert valid == ["client-0", "client-2"]
            assert verifier.audit.clients["client-1"] is ClientStatus.INVALID_PROOF

    def test_duplicate_client_ids_keep_separate_verdicts(self):
        """Statuses are per broadcast, not per id — a forged broadcast
        must not inherit the verdict of a valid one sharing its id."""
        params = make_params()
        broadcasts = self._broadcasts(params, [[1], [1]])
        forged = dataclasses.replace(
            broadcasts[0],
            client_id=broadcasts[1].client_id,
            validity_proof=broadcasts[0].validity_proof,
        )
        for use_batch in (True, False):
            verifier = PublicVerifier(params, SeededRNG("v"), batch=use_batch)
            valid = verifier.validate_clients([forged, broadcasts[1]])
            # The forged broadcast (client-0's proof under client-1's id)
            # fails its id-bound transcript; only the genuine one passes.
            assert valid == ["client-1"]

    def test_complaints_still_exclude(self):
        params = make_params(num_provers=2)
        broadcasts = self._broadcasts(params, [[1], [0]])
        verifier = PublicVerifier(params, SeededRNG("v"))
        valid = verifier.validate_clients(
            broadcasts, complaints={"prover-0": ["client-0"]}
        )
        assert valid == ["client-1"]
        assert verifier.audit.clients["client-0"] is ClientStatus.BAD_OPENING


class TestLine12Fold:
    def test_folded_update_matches_per_coin(self):
        """The one-pass Line 12 fold equals the coin-by-coin computation."""
        params = make_params(dimension=2)
        message = coin_message(params, seed="fold")
        rng = SeededRNG("bits")
        bits = [[rng.coin() for _ in range(2)] for _ in range(params.nb)]
        verifier = PublicVerifier(params, SeededRNG("v"))
        verifier._coin_messages["prover-0"] = message
        verifier.apply_public_bits("prover-0", bits)
        pedersen = params.pedersen
        for m in range(2):
            expected = pedersen.commitment_to_constant(0)
            for j in range(params.nb):
                c = message.commitments[j][m]
                adjusted = pedersen.one_minus(c) if bits[j][m] == 1 else c
                expected = expected * adjusted
            assert verifier._adjusted_products["prover-0"][m].element == expected.element

    def test_all_zero_and_all_one_bits(self):
        params = make_params()
        message = coin_message(params, seed="edge")
        for fill in (0, 1):
            verifier = PublicVerifier(params, SeededRNG("v"))
            verifier._coin_messages["prover-0"] = message
            bits = [[fill] for _ in range(params.nb)]
            verifier.apply_public_bits("prover-0", bits)
            pedersen = params.pedersen
            expected = pedersen.commitment_to_constant(0)
            for j in range(params.nb):
                c = message.commitments[j][0]
                expected = expected * (pedersen.one_minus(c) if fill else c)
            assert verifier._adjusted_products["prover-0"][0].element == expected.element


class TestEndToEndEquivalence:
    @pytest.mark.parametrize("dimension", [1, 3])
    def test_batched_and_sequential_protocols_agree(self, dimension):
        # Batch weights come from gamma_rng, not the verifier's protocol
        # stream, so the two modes co-sample identical Morra bits and the
        # raw releases match bit for bit — not just the verdicts.
        params = make_params(dimension=dimension, num_provers=2)
        releases = []
        for batch in (True, False):
            protocol = VerifiableBinomialProtocol(
                params,
                verifier=PublicVerifier(params, SeededRNG("vfr"), batch=batch),
                rng=SeededRNG("run"),
            )
            clients = [
                Client(f"client-{i}", [1] + [0] * (dimension - 1), SeededRNG(f"cl{i}"))
                for i in range(4)
            ]
            result = protocol.run(clients)
            release = result.release
            assert release.accepted
            assert sorted(release.audit.valid_clients()) == [
                f"client-{i}" for i in range(4)
            ]
            assert release.audit.all_provers_honest()
            releases.append(release)
        assert releases[0].raw == releases[1].raw

    def test_failed_final_check_names_coordinate(self):
        params = make_params(dimension=2)
        prover = Prover("prover-0", params, SeededRNG("p"))
        context = b"ctx"
        message = prover.commit_coins(context)
        verifier = PublicVerifier(params, SeededRNG("v"))
        assert verifier.verify_coin_commitments(message, context)
        bits = [[0, 0] for _ in range(params.nb)]
        verifier.apply_public_bits("prover-0", bits)
        output = prover.compute_output([], bits)
        tampered = dataclasses.replace(
            output, y=((output.y[0]) % params.q, (output.y[1] + 1) % params.q)
        )
        assert not verifier.check_prover_output(tampered, [[], []])
        assert verifier.audit.provers["prover-0"] is ProverStatus.FAILED_FINAL_CHECK
        assert any("coordinate 1" in note for note in verifier.audit.notes)
