"""Auto-generated encode→decode identity for *every* registered message.

Dynamic twin of lint rule **REP002** (wire exhaustiveness): the static
rule proves every message class in :mod:`repro.core.messages` *has* a
codec entry; this test proves each registered codec is *correct* —
instantiate a representative of every type the registry knows about,
encode, decode, and demand identity plus canonical re-encoding.

The test enumerates the registry itself, so registering a new message
type automatically extends coverage: the build fails with an explicit
"add a builder" message until the new type gets a representative here,
and the codec bug class (field dropped in encode, order swapped in
decode) is caught without waiting for a distributed smoke test to
happen to send that message.
"""

import pytest

from repro.core import messages as m
from repro.core.params import setup
from repro.crypto.serialization import _registry, decode_message, encode_message
from repro.utils.rng import SeededRNG


@pytest.fixture(scope="module", params=["p64-sim", "ristretto255"])
def params(request):
    return setup(1.0, 2**-10, num_provers=2, group=request.param, nb_override=31)


def _enrollment(params):
    from repro.api.queries import CountQuery

    query = CountQuery(epsilon=1.0, delta=2**-10)
    client = query.make_client("client-0", 1, SeededRNG("rt-client"))
    return client.submit(params)


def _build_client_broadcast(params):
    broadcast, _ = _enrollment(params)
    return [broadcast]


def _build_client_share(params):
    _, privates = _enrollment(params)
    return list(privates)


def _build_coin_commitments(params):
    from repro.core.prover import Prover

    prover = Prover("prover-0", params, SeededRNG("rt-coins"))
    prover.begin_coin_stream(b"rt-ctx")
    return [prover.commit_coin_chunk(3)]


def _build_prover_output(params):
    return [m.ProverOutputMessage(prover_id="prover-1", y=(3, 5), z=(7, 11))]


def _build_morra_commit(params):
    return [
        m.MorraCommitMessage(sender="verifier", digests=(b"\x01" * 32, b"\x02" * 32))
    ]


def _build_morra_reveal(params):
    return [m.MorraRevealMessage(sender="verifier", values=(0, 1, params.q - 1))]


def _build_release(params):
    audit = m.AuditRecord(
        clients={
            "client-0": m.ClientStatus.VALID,
            "client-1": m.ClientStatus.INVALID_PROOF,
        },
        provers={
            "prover-0": m.ProverStatus.HONEST,
            "prover-1": m.ProverStatus.FAILED_FINAL_CHECK,
        },
    )
    audit.note("prover-1: Line 13 check failed")
    return [
        m.Release(
            raw=(17, 3),
            estimate=(1.5, -2.25),
            accepted=False,
            audit=audit,
            epsilon=0.88,
            delta=2**-10,
        )
    ]


# type -> builder returning representative instances.  Extend this when
# registering a new message type; test_every_registered_type_has_a_builder
# names the gap explicitly otherwise.
BUILDERS = {
    m.ClientBroadcast: _build_client_broadcast,
    m.ClientShareMessage: _build_client_share,
    m.CoinCommitmentMessage: _build_coin_commitments,
    m.ProverOutputMessage: _build_prover_output,
    m.MorraCommitMessage: _build_morra_commit,
    m.MorraRevealMessage: _build_morra_reveal,
    m.Release: _build_release,
}

_TAGS = sorted(_registry()[0])


def test_every_registered_type_has_a_builder():
    registry, _ = _registry()
    registered = {entry[0] for entry in registry.values()}
    missing = sorted(cls.__name__ for cls in registered - set(BUILDERS))
    assert not missing, (
        f"registered message types without a round-trip builder: {missing} "
        "— add a builder to BUILDERS in this file so encode→decode "
        "identity stays exercised for every wire type"
    )
    stale = sorted(cls.__name__ for cls in set(BUILDERS) - registered)
    assert not stale, f"builders for unregistered types (remove them): {stale}"


@pytest.mark.parametrize("tag", _TAGS)
def test_registered_codec_roundtrip_identity(params, tag):
    registry, _ = _registry()
    cls = registry[tag][0]
    builder = BUILDERS.get(cls)
    if builder is None:
        pytest.fail(f"no builder for {cls.__name__} (tag {tag!r})")
    for message in builder(params):
        data = encode_message(message)
        restored = decode_message(params.group, data)
        assert restored == message, f"{cls.__name__} (tag {tag!r}) not identical"
        assert encode_message(restored) == data, (
            f"{cls.__name__} (tag {tag!r}) re-encoding is not canonical"
        )
