"""The full ΠBin protocol on every group backend.

The commitment and Σ-proof layers are written against the abstract Group
interface; these end-to-end runs prove the claim for all four backends
(finite-field Schnorr groups, ristretto255, NIST P-256).  Tiny nb keeps
the elliptic runs quick.
"""

import pytest

from repro.core.params import setup
from repro.core.protocol import VerifiableBinomialProtocol
from repro.core.prover import OutputTamperingProver
from repro.utils.rng import SeededRNG

BACKENDS = ["p64-sim", "p128-sim", "ristretto255", "p256"]


@pytest.mark.parametrize("backend", BACKENDS)
def test_honest_run_on_backend(backend):
    params = setup(1.0, 2**-10, num_provers=1, group=backend, nb_override=4)
    protocol = VerifiableBinomialProtocol(params, rng=SeededRNG(f"be-{backend}"))
    result = protocol.run_bits([1, 0, 1])
    assert result.release.accepted
    noise = result.release.raw[0] - 2
    assert 0 <= noise <= 4


@pytest.mark.parametrize("backend", ["ristretto255", "p256"])
def test_cheater_caught_on_elliptic_backends(backend):
    params = setup(1.0, 2**-10, num_provers=1, group=backend, nb_override=4)
    cheater = OutputTamperingProver(
        "prover-0", params, SeededRNG(f"ch-{backend}"), bias=3
    )
    protocol = VerifiableBinomialProtocol(
        params, provers=[cheater], rng=SeededRNG(f"r-{backend}")
    )
    result = protocol.run_bits([1, 1])
    assert not result.release.accepted


def test_mpc_on_modp2048_smoke():
    """One small paper-backend (2048-bit) MPC run keeps the production
    parameter path exercised."""
    params = setup(1.0, 2**-10, num_provers=2, group="modp-2048", nb_override=2)
    protocol = VerifiableBinomialProtocol(params, rng=SeededRNG("2048"))
    result = protocol.run_bits([1])
    assert result.release.accepted
