"""Byte-level public auditability: publish a run, replay the audit."""

import pytest

from repro.core.bulletin import replay_audit
from repro.core.client import Client, NonBinaryClient
from repro.core.messages import ClientStatus, ProverStatus
from repro.core.params import setup
from repro.core.protocol import VerifiableBinomialProtocol
from repro.core.prover import OutputTamperingProver, Prover
from repro.utils.rng import SeededRNG

GROUP = "p64-sim"


def run_and_publish(*, provers=None, clients=None, k=1, dimension=1, seed="bb"):
    params = setup(
        1.0, 2**-10, num_provers=k, group=GROUP, nb_override=16, dimension=dimension
    )
    protocol = VerifiableBinomialProtocol(params, provers=provers, rng=SeededRNG(seed))
    if clients is None:
        result = protocol.run_bits([1, 0, 1])
    else:
        result = protocol.run(clients)
    return params, result, result.to_bulletin(params)


class TestHonestReplay:
    def test_replay_matches_original_audit(self):
        params, result, board = run_and_publish()
        replayed = replay_audit(params, board)
        assert replayed.clients == result.release.audit.clients
        assert replayed.provers == result.release.audit.provers
        assert replayed.all_provers_honest()

    def test_replay_mpc(self):
        params, result, board = run_and_publish(k=2, seed="bb2")
        replayed = replay_audit(params, board)
        assert replayed.provers == result.release.audit.provers

    def test_replay_histogram_dimension(self):
        params = setup(1.0, 2**-10, num_provers=2, dimension=3, group=GROUP, nb_override=8)
        protocol = VerifiableBinomialProtocol(params, rng=SeededRNG("bbh"))
        clients = [
            Client(f"c{i}", [1 if m == i % 3 else 0 for m in range(3)], SeededRNG(f"c{i}"))
            for i in range(5)
        ]
        result = protocol.run(clients)
        replayed = replay_audit(params, result.to_bulletin(params))
        assert replayed.all_provers_honest()

    def test_board_sizes_accounted(self):
        params, result, board = run_and_publish(seed="bb3")
        assert board.total_bytes() > 0
        assert len(board.topic("client-broadcast/")) == 3
        assert len(board.topic("coin-commitments/")) == 1
        assert len(board.topic("prover-output/")) == 1


class TestDishonestRunsReplay:
    def test_cheating_prover_detected_from_bytes(self):
        params = setup(1.0, 2**-10, num_provers=1, group=GROUP, nb_override=16)
        cheater = OutputTamperingProver("prover-0", params, SeededRNG("c"), bias=4)
        protocol = VerifiableBinomialProtocol(params, provers=[cheater], rng=SeededRNG("bb4"))
        result = protocol.run_bits([1, 0])
        replayed = replay_audit(params, result.to_bulletin(params))
        assert replayed.provers["prover-0"] is ProverStatus.FAILED_FINAL_CHECK

    def test_dishonest_client_rejected_from_bytes(self):
        params = setup(1.0, 2**-10, num_provers=2, group=GROUP, nb_override=8)
        protocol = VerifiableBinomialProtocol(params, rng=SeededRNG("bb5"))
        clients = [Client(f"c{i}", [1], SeededRNG(f"c{i}")) for i in range(3)]
        clients.append(NonBinaryClient("evil", [4], SeededRNG("e")))
        result = protocol.run(clients)
        replayed = replay_audit(params, result.to_bulletin(params))
        assert replayed.clients["evil"] is ClientStatus.INVALID_PROOF
        assert replayed.clients["c0"] is ClientStatus.VALID


class TestTamperedBoard:
    def test_tampered_output_detected(self):
        """An adversary rewriting the board's output entry cannot produce
        an accepting audit: the commitments pin the true value."""
        params, result, board = run_and_publish(seed="bb6")
        entry = board.topic("prover-output/")[0]
        payload = bytearray(entry.payload)
        payload[-1] ^= 0x01  # flip a bit of z
        idx = board.entries.index(entry)
        from repro.core.bulletin import BoardEntry

        board.entries[idx] = BoardEntry(entry.topic, entry.party, bytes(payload))
        replayed = replay_audit(params, board)
        assert replayed.provers["prover-0"] is ProverStatus.FAILED_FINAL_CHECK

    def test_dropped_client_entry_detected(self):
        """Deleting an honest client's broadcast desyncs the product check
        — a censoring bulletin operator is caught too."""
        params, result, board = run_and_publish(seed="bb7")
        victim = board.topic("client-broadcast/client-0")[0]
        board.entries.remove(victim)
        replayed = replay_audit(params, board)
        assert not replayed.all_provers_honest()
