"""Client-side sharing, commitments and validity proofs."""

import pytest

from repro.core.client import Client, InconsistentShareClient, encode_choice
from repro.core.params import setup
from repro.crypto.sigma.onehot import OneHotProof
from repro.crypto.sigma.or_bit import BitProof
from repro.errors import ParameterError
from repro.utils.rng import SeededRNG


@pytest.fixture(scope="module")
def params_k2():
    return setup(1.0, 2**-10, num_provers=2, group="p64-sim", nb_override=31)


@pytest.fixture(scope="module")
def params_m4():
    return setup(1.0, 2**-10, num_provers=2, dimension=4, group="p64-sim", nb_override=31)


class TestEncodeChoice:
    def test_bit_dimension(self):
        assert encode_choice(0, 1) == [0]
        assert encode_choice(1, 1) == [1]
        with pytest.raises(ParameterError):
            encode_choice(2, 1)

    def test_one_hot(self):
        assert encode_choice(2, 4) == [0, 0, 1, 0]
        with pytest.raises(ParameterError):
            encode_choice(4, 4)
        with pytest.raises(ParameterError):
            encode_choice(-1, 4)


class TestSubmission:
    def test_shapes(self, params_k2):
        client = Client("c", [1], SeededRNG("c"))
        broadcast, privates = client.submit(params_k2)
        assert len(broadcast.share_commitments) == 2  # K provers
        assert len(broadcast.share_commitments[0]) == 1  # M coordinates
        assert isinstance(broadcast.validity_proof, BitProof)
        assert len(privates) == 2
        assert len(privates[0].openings) == 1

    def test_m_dimensional_uses_onehot(self, params_m4):
        client = Client("c", encode_choice(2, 4), SeededRNG("c4"))
        broadcast, privates = client.submit(params_m4)
        assert isinstance(broadcast.validity_proof, OneHotProof)
        assert broadcast.validity_proof.dimension == 4

    def test_shares_reconstruct_input(self, params_k2):
        client = Client("c", [1], SeededRNG("rec"))
        _, privates = client.submit(params_k2)
        total = sum(p.openings[0].value for p in privates) % params_k2.q
        assert total == 1

    def test_openings_match_commitments(self, params_k2):
        client = Client("c", [1], SeededRNG("open"))
        broadcast, privates = client.submit(params_k2)
        for k in range(2):
            assert params_k2.pedersen.opens_to(
                broadcast.share_commitments[k][0], privates[k].openings[0]
            )

    def test_derived_commitment_is_product(self, params_k2):
        client = Client("c", [1], SeededRNG("der"))
        broadcast, _ = client.submit(params_k2)
        derived = broadcast.derived_commitments()
        product = params_k2.pedersen.product(
            [broadcast.share_commitments[k][0] for k in range(2)]
        )
        assert derived[0].element == product.element

    def test_wrong_vector_length_rejected(self, params_m4):
        client = Client("c", [1], SeededRNG("w"))
        with pytest.raises(ParameterError):
            client.submit(params_m4)


class TestDishonestClients:
    def test_inconsistent_share_client_mismatch(self, params_k2):
        client = InconsistentShareClient("c", [1], victim_prover=0, rng=SeededRNG("i"))
        broadcast, privates = client.submit(params_k2)
        # Tampered opening no longer matches the broadcast commitment.
        assert not params_k2.pedersen.opens_to(
            broadcast.share_commitments[0][0], privates[0].openings[0]
        )
        # The other prover's opening is untouched.
        assert params_k2.pedersen.opens_to(
            broadcast.share_commitments[1][0], privates[1].openings[0]
        )
