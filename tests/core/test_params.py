"""Public parameters and setup()."""

import pytest

from repro.core.params import PublicParams, setup
from repro.crypto.pedersen import PedersenParams
from repro.dp.binomial import coins_for_privacy
from repro.errors import ParameterError


class TestSetup:
    def test_defaults(self):
        params = setup(1.0, 2**-10, group="p64-sim")
        assert params.num_provers == 1
        assert params.dimension == 1
        assert params.nb == coins_for_privacy(1.0, 2**-10)
        assert params.q == params.group.order

    def test_nb_override(self):
        params = setup(1.0, 2**-10, group="p64-sim", nb_override=64)
        assert params.nb == 64
        # effective epsilon recomputed for the override
        assert params.epsilon != 1.0

    def test_power_of_two(self):
        params = setup(1.0, 2**-10, group="p64-sim", round_to_power_of_two=True)
        assert params.nb & (params.nb - 1) == 0

    def test_ristretto_backend(self):
        params = setup(1.0, 2**-10, group="ristretto255", nb_override=31)
        assert params.group.name == "ristretto255"

    def test_invalid(self):
        with pytest.raises(ParameterError):
            setup(1.0, 2**-10, group="p64-sim", num_provers=0)
        with pytest.raises(ParameterError):
            setup(1.0, 2**-10, group="p64-sim", dimension=0)
        with pytest.raises(ParameterError):
            setup(1.0, 2**-10, group="p64-sim", nb_override=0)

    def test_noise_mean(self):
        params = setup(1.0, 2**-10, group="p64-sim", num_provers=3, nb_override=50)
        assert params.noise_mean == 75.0
        assert params.total_noise_coins == 150


class TestFingerprint:
    def test_stable(self, group64):
        a = setup(1.0, 2**-10, group="p64-sim")
        b = setup(1.0, 2**-10, group="p64-sim")
        assert a.fingerprint() == b.fingerprint()

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"epsilon": 2.0},
            {"delta": 2**-12},
            {"num_provers": 2},
            {"dimension": 3},
            {"nb_override": 99},
        ],
    )
    def test_sensitive_to_every_field(self, kwargs):
        base = dict(epsilon=1.0, delta=2**-10, group="p64-sim")
        a = setup(**base)
        base.update(kwargs)
        b = setup(**base)
        assert a.fingerprint() != b.fingerprint()

    def test_sensitive_to_group(self):
        a = setup(1.0, 2**-10, group="p64-sim")
        b = setup(1.0, 2**-10, group="p128-sim")
        assert a.fingerprint() != b.fingerprint()
