"""Completeness of ΠBin (Theorem 4.1, first claim).

Honest runs always accept, include every client, and release
Q(X) + Binomial(K·nb, 1/2) — checked both structurally (per run) and
distributionally (across repeated runs).
"""

import pytest

from repro.analysis.distributions import binomial_goodness_of_fit
from repro.core.client import Client
from repro.core.messages import ClientStatus
from repro.core.params import setup
from repro.core.protocol import VerifiableBinomialProtocol
from repro.errors import ParameterError
from repro.utils.rng import SeededRNG

GROUP = "p64-sim"


def run_once(bits, *, num_provers=1, nb=32, seed="c", dimension=1):
    params = setup(
        1.0, 2**-10, num_provers=num_provers, group=GROUP, nb_override=nb,
        dimension=dimension,
    )
    protocol = VerifiableBinomialProtocol(params, rng=SeededRNG(seed))
    return params, protocol.run_bits(bits) if dimension == 1 else None


class TestCuratorModel:
    def test_honest_run_accepts(self):
        params, result = run_once([1, 0, 1, 1, 0], seed="a1")
        assert result.release.accepted
        assert result.release.audit.all_provers_honest()

    def test_all_clients_validated(self):
        _, result = run_once([1] * 6, seed="a2")
        statuses = result.release.audit.clients.values()
        assert all(s is ClientStatus.VALID for s in statuses)

    def test_raw_output_is_count_plus_noise(self):
        params, result = run_once([1, 1, 1, 0, 0], nb=48, seed="a3")
        noise = result.release.raw[0] - 3
        assert 0 <= noise <= params.nb  # Binomial support

    def test_estimate_debiased(self):
        params, result = run_once([1, 0], nb=48, seed="a4")
        assert result.release.estimate[0] == result.release.raw[0] - params.nb / 2

    def test_empty_dataset(self):
        params, result = run_once([], nb=32, seed="a5")
        assert result.release.accepted
        noise = result.release.raw[0]
        assert 0 <= noise <= params.nb

    def test_all_zero_inputs(self):
        _, result = run_once([0, 0, 0, 0], seed="a6")
        assert result.release.accepted

    def test_timer_covers_table1_stages(self):
        _, result = run_once([1, 0], seed="a7")
        for stage in ("sigma-proof", "sigma-verification", "morra", "aggregation", "check"):
            assert stage in result.timer.stages

    def test_noise_distribution_matches_binomial(self):
        """Across many runs the protocol noise is Binomial(nb, 1/2) —
        the completeness distribution claim, tested at the protocol level."""
        nb = 16
        params = setup(1.0, 2**-10, group=GROUP, nb_override=nb)
        noises = []
        for t in range(120):
            protocol = VerifiableBinomialProtocol(params, rng=SeededRNG(f"dist{t}"))
            result = protocol.run_bits([1, 0, 1])
            assert result.release.accepted
            noises.append(result.release.raw[0] - 2)
        assert binomial_goodness_of_fit(noises, nb) > 0.001


class TestMpcModel:
    @pytest.mark.parametrize("k", [2, 3])
    def test_honest_mpc_accepts(self, k):
        params, result = run_once([1, 0, 1], num_provers=k, seed=f"m{k}")
        assert result.release.accepted

    def test_mpc_noise_is_k_copies(self):
        """K provers ⇒ noise support is [0, K·nb] and mean K·nb/2."""
        nb, k = 24, 2
        params = setup(1.0, 2**-10, num_provers=k, group=GROUP, nb_override=nb)
        noises = []
        for t in range(60):
            protocol = VerifiableBinomialProtocol(params, rng=SeededRNG(f"k{t}"))
            result = protocol.run_bits([1])
            noises.append(result.release.raw[0] - 1)
        assert all(0 <= z <= k * nb for z in noises)
        mean = sum(noises) / len(noises)
        assert abs(mean - k * nb / 2) < 4.0
        # Sum of independent binomials IS Binomial(K*nb, 1/2):
        assert binomial_goodness_of_fit(noises, k * nb) > 0.001

    def test_public_bits_per_prover_differ(self):
        params, result = run_once([1], num_provers=2, seed="pb")
        bits = result.public_bits
        assert set(bits) == {"prover-0", "prover-1"}
        assert bits["prover-0"] != bits["prover-1"]


class TestHistogramDimension:
    def test_m_dimensional_counts(self):
        params = setup(
            1.0, 2**-10, num_provers=2, dimension=3, group=GROUP, nb_override=24
        )
        protocol = VerifiableBinomialProtocol(params, rng=SeededRNG("hist"))
        clients = [
            Client(f"c{i}", [1 if m == i % 3 else 0 for m in range(3)], SeededRNG(f"c{i}"))
            for i in range(9)
        ]
        result = protocol.run(clients)
        assert result.release.accepted
        for m in range(3):
            noise = result.release.raw[m] - 3
            assert 0 <= noise <= 2 * params.nb

    def test_run_bits_requires_dimension_one(self):
        params = setup(1.0, 2**-10, dimension=2, group=GROUP, nb_override=24)
        protocol = VerifiableBinomialProtocol(params, rng=SeededRNG("rb"))
        with pytest.raises(ParameterError):
            protocol.run_bits([1, 0])


class TestConstruction:
    def test_wrong_prover_count_rejected(self):
        from repro.core.prover import Prover

        params = setup(1.0, 2**-10, num_provers=2, group=GROUP, nb_override=24)
        with pytest.raises(ParameterError):
            VerifiableBinomialProtocol(
                params, provers=[Prover("p", params)], rng=SeededRNG("x")
            )

    def test_duplicate_prover_names_rejected(self):
        from repro.core.prover import Prover

        params = setup(1.0, 2**-10, num_provers=2, group=GROUP, nb_override=24)
        with pytest.raises(ParameterError):
            VerifiableBinomialProtocol(
                params,
                provers=[Prover("p", params), Prover("p", params)],
                rng=SeededRNG("x"),
            )
