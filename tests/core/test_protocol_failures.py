"""Failure injection: aborts, silence, and malformed messages mid-protocol."""

import pytest

from repro.core.client import Client
from repro.core.messages import ClientShareMessage, ProverStatus
from repro.core.params import setup
from repro.core.protocol import VerifiableBinomialProtocol
from repro.core.prover import Prover
from repro.errors import EarlyExit, ProtocolAbort
from repro.utils.rng import SeededRNG

GROUP = "p64-sim"


def make_params(k=1, nb=8):
    return setup(1.0, 2**-10, num_provers=k, group=GROUP, nb_override=nb)


class SilentMorraProver(Prover):
    """Goes dark during the Morra reveal — early exit (Section 3.1)."""

    def reveal(self, values, randomness, observed):
        return None


class EquivocatingMorraProver(Prover):
    """Tries to change its Morra contribution after seeing the verifier's."""

    def reveal(self, values, randomness, observed):
        if not observed:
            return values, randomness
        tweaked = list(values)
        tweaked[0] = (values[0] + 1)
        return tweaked, randomness


class MisshapenOutputProver(Prover):
    """Emits an output vector of the wrong dimension."""

    def _emit_output(self, y, z):
        from repro.core.messages import ProverOutputMessage

        return ProverOutputMessage(prover_id=self.name, y=tuple(y) + (0,), z=tuple(z))


class AbortingAggregationProver(Prover):
    """Raises mid-aggregation (e.g. lost its state)."""

    def compute_output(self, valid_ids, public_bits):
        raise ProtocolAbort("prover state lost", party=self.name)


class TestMorraFailures:
    def test_silent_prover_aborts_run(self):
        """Morra silence has no recovery: the run aborts with the party
        named — matching the paper's 'early exit is trivially detected,
        output discarded' semantics."""
        params = make_params()
        prover = SilentMorraProver("prover-0", params, SeededRNG("s"))
        protocol = VerifiableBinomialProtocol(params, provers=[prover], rng=SeededRNG("x"))
        with pytest.raises(EarlyExit) as err:
            protocol.run_bits([1, 0])
        assert err.value.party == "prover-0"

    def test_morra_equivocation_aborts_and_names(self):
        params = make_params()
        # 'prover-0' < 'verifier' lexicographically, so the prover reveals
        # last and observes the verifier's opening first — the adaptive spot.
        prover = EquivocatingMorraProver("prover-0", params, SeededRNG("e"))
        protocol = VerifiableBinomialProtocol(params, provers=[prover], rng=SeededRNG("y"))
        with pytest.raises(ProtocolAbort) as err:
            protocol.run_bits([1])
        assert err.value.party == "prover-0"


class TestOutputFailures:
    def test_misshapen_output_rejected(self):
        params = make_params()
        prover = MisshapenOutputProver("prover-0", params, SeededRNG("m"))
        protocol = VerifiableBinomialProtocol(params, provers=[prover], rng=SeededRNG("z"))
        result = protocol.run_bits([1, 0])
        assert not result.release.accepted
        assert result.release.audit.provers["prover-0"] is ProverStatus.FAILED_FINAL_CHECK

    def test_aggregation_abort_recorded(self):
        params = make_params()
        prover = AbortingAggregationProver("prover-0", params, SeededRNG("a"))
        protocol = VerifiableBinomialProtocol(params, provers=[prover], rng=SeededRNG("w"))
        result = protocol.run_bits([1])
        assert not result.release.accepted
        assert result.release.audit.provers["prover-0"] is ProverStatus.ABORTED

    def test_one_aborting_prover_does_not_crash_others(self):
        params = make_params(k=2)
        provers = [
            AbortingAggregationProver("prover-0", params, SeededRNG("a")),
            Prover("prover-1", params, SeededRNG("h")),
        ]
        protocol = VerifiableBinomialProtocol(params, provers=provers, rng=SeededRNG("v"))
        result = protocol.run_bits([1, 1])
        audit = result.release.audit
        assert audit.provers["prover-0"] is ProverStatus.ABORTED
        assert audit.provers["prover-1"] is ProverStatus.HONEST
        assert not result.release.accepted


class TestClientMessageFailures:
    def test_wrong_arity_share_message_complained(self):
        params = make_params(k=1)
        prover = Prover("prover-0", params, SeededRNG("p"))
        client = Client("c0", [1], SeededRNG("c"))
        broadcast, privates = client.submit(params)
        truncated = ClientShareMessage(client_id="c0", openings=())
        assert prover.receive_client_share(broadcast, truncated, 0) is False

    def test_out_of_range_prover_index_complained(self):
        """A broadcast declaring fewer share-commitment rows than K
        provers yields a complaint (False), never an IndexError — a
        hostile client must not abort the session with the blame landing
        on the honest prover that indexed the missing row."""
        import dataclasses

        params = make_params(k=2)
        prover = Prover("prover-1", params, SeededRNG("p"))
        broadcast, privates = Client("c0", [1], SeededRNG("c")).submit(params)
        short = dataclasses.replace(
            broadcast, share_commitments=broadcast.share_commitments[:1]
        )
        assert prover.receive_client_share(short, privates[1], 1) is False

    def test_short_commitment_row_complained(self):
        """A commitment row shorter than the dimension must be a
        complaint, not a silently truncated zip that accepts unchecked
        openings."""
        import dataclasses

        params = make_params(k=1)
        prover = Prover("prover-0", params, SeededRNG("p"))
        broadcast, privates = Client("c0", [1], SeededRNG("c")).submit(params)
        short = dataclasses.replace(broadcast, share_commitments=((),))
        assert prover.receive_client_share(short, privates[0], 0) is False

    def test_mismatched_client_id_raises(self):
        params = make_params(k=1)
        prover = Prover("prover-0", params, SeededRNG("p"))
        a, privates_a = Client("a", [1], SeededRNG("a")).submit(params)
        b, privates_b = Client("b", [1], SeededRNG("b")).submit(params)
        from repro.errors import ParameterError

        with pytest.raises(ParameterError):
            prover.receive_client_share(a, privates_b[0], 0)

    def test_unknown_validated_client_aborts_prover(self):
        """A prover asked to aggregate a client it never heard from must
        abort rather than guess."""
        params = make_params(k=1)
        prover = Prover("prover-0", params, SeededRNG("p"))
        bits = [[0] for _ in range(params.nb)]
        prover.commit_coins(b"ctx")
        with pytest.raises(ProtocolAbort):
            prover.compute_output(["ghost"], bits)
