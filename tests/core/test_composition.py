"""Composing verifiable noise onto outer (PRIO-style) aggregates."""

import pytest

from repro.core.composition import NoiseAttestation, VerifiableNoiseWrapper
from repro.core.params import setup
from repro.errors import VerificationError
from repro.mpc.morra import MorraParticipant
from repro.utils.rng import SeededRNG

GROUP = "p64-sim"


@pytest.fixture()
def wrapper():
    params = setup(1.0, 2**-10, group=GROUP, nb_override=16)
    return VerifiableNoiseWrapper(params, SeededRNG("w"))


def attest(wrapper, aggregate=100, seed="srv"):
    server = MorraParticipant("server-0", SeededRNG(seed))
    verifier = MorraParticipant("verifier", SeededRNG(f"{seed}-vfr"))
    return wrapper.attest(server, verifier, aggregate, b"ctx")


class TestComposition:
    def test_roundtrip(self, wrapper):
        attestation = attest(wrapper)
        wrapper.verify(attestation, b"ctx")

    def test_noise_in_support(self, wrapper):
        attestation = attest(wrapper, aggregate=50)
        noise = attestation.y - 50
        assert 0 <= noise <= wrapper.params.nb

    def test_tampered_y_rejected(self, wrapper):
        a = attest(wrapper)
        bad = NoiseAttestation(
            a.server_id, a.aggregate_commitment, a.coin_commitments,
            a.coin_proofs, a.public_bits, (a.y + 1) % wrapper.params.q, a.z,
        )
        with pytest.raises(VerificationError) as err:
            wrapper.verify(bad, b"ctx")
        assert err.value.culprit == "server-0"

    def test_wrong_context_rejected(self, wrapper):
        a = attest(wrapper)
        with pytest.raises(VerificationError):
            wrapper.verify(a, b"other-ctx")

    def test_flipped_public_bit_rejected(self, wrapper):
        a = attest(wrapper)
        flipped = tuple(
            (1 - b if i == 0 else b) for i, b in enumerate(a.public_bits)
        )
        bad = NoiseAttestation(
            a.server_id, a.aggregate_commitment, a.coin_commitments,
            a.coin_proofs, flipped, a.y, a.z,
        )
        with pytest.raises(VerificationError):
            wrapper.verify(bad, b"ctx")

    def test_requires_scalar_dimension(self):
        params = setup(1.0, 2**-10, dimension=2, group=GROUP, nb_override=16)
        with pytest.raises(VerificationError):
            VerifiableNoiseWrapper(params)
