"""Property-based protocol tests: completeness over random configurations.

Hypothesis drives random datasets, prover counts and dimensions through
full protocol runs; the invariants — acceptance, bounded noise, audit
consistency — must hold for every configuration.
"""

from hypothesis import given, settings, strategies as st

from repro.core.client import Client
from repro.core.messages import ClientStatus
from repro.core.params import setup
from repro.core.protocol import VerifiableBinomialProtocol
from repro.utils.rng import SeededRNG

GROUP = "p64-sim"


class TestCompletenessProperties:
    @given(
        bits=st.lists(st.integers(min_value=0, max_value=1), max_size=8),
        k=st.integers(min_value=1, max_value=3),
        nb=st.integers(min_value=1, max_value=12),
    )
    @settings(max_examples=20, deadline=None)
    def test_honest_run_invariants(self, bits, k, nb):
        params = setup(1.0, 2**-10, num_provers=k, group=GROUP, nb_override=nb)
        seed = f"prop-{len(bits)}-{k}-{nb}"
        protocol = VerifiableBinomialProtocol(params, rng=SeededRNG(seed))
        result = protocol.run_bits(bits)
        release = result.release

        # 1. Honest runs always accept (completeness, δc = 0).
        assert release.accepted
        # 2. Every client validated.
        assert all(s is ClientStatus.VALID for s in release.audit.clients.values())
        # 3. Raw output = count + noise with noise in [0, K·nb].
        noise = release.raw[0] - sum(bits)
        assert 0 <= noise <= k * nb
        # 4. Debiasing is exactly the public mean.
        assert release.estimate[0] == release.raw[0] - k * nb / 2
        # 5. The public bit matrices have the right shape.
        for bits_matrix in result.public_bits.values():
            assert len(bits_matrix) == nb
            assert all(b in (0, 1) for row in bits_matrix for b in row)

    @given(
        dimension=st.integers(min_value=2, max_value=4),
        choices=st.lists(st.integers(min_value=0, max_value=3), min_size=1, max_size=6),
    )
    @settings(max_examples=10, deadline=None)
    def test_histogram_invariants(self, dimension, choices):
        choices = [c % dimension for c in choices]
        params = setup(
            1.0, 2**-10, num_provers=2, dimension=dimension, group=GROUP, nb_override=6
        )
        protocol = VerifiableBinomialProtocol(
            params, rng=SeededRNG(f"h-{dimension}-{len(choices)}")
        )
        clients = [
            Client(
                f"c{i}",
                [1 if m == choice else 0 for m in range(dimension)],
                SeededRNG(f"c{i}"),
            )
            for i, choice in enumerate(choices)
        ]
        result = protocol.run(clients)
        assert result.release.accepted
        true = [choices.count(m) for m in range(dimension)]
        for m in range(dimension):
            noise = result.release.raw[m] - true[m]
            assert 0 <= noise <= 2 * params.nb

    @given(bits=st.lists(st.integers(min_value=0, max_value=1), min_size=1, max_size=6))
    @settings(max_examples=10, deadline=None)
    def test_determinism_per_seed(self, bits):
        """Same seed ⇒ identical release; different seed ⇒ fresh noise."""
        params = setup(1.0, 2**-10, group=GROUP, nb_override=8)
        one = VerifiableBinomialProtocol(params, rng=SeededRNG("det")).run_bits(bits)
        two = VerifiableBinomialProtocol(params, rng=SeededRNG("det")).run_bits(bits)
        assert one.release.raw == two.release.raw
        assert one.public_bits == two.public_bits
