"""Zero-knowledge simulators (Theorem 4.1 claim 3 / Appendix D).

The executable simulator receives only public data and the ideal output,
yet fabricates views that (a) pass every public verifier check and
(b) are distributionally indistinguishable from real runs on the public
components the verifier actually sees.
"""

import pytest

from repro.analysis.distributions import binomial_goodness_of_fit, chi_square_uniform
from repro.core.client import Client
from repro.core.params import setup
from repro.core.protocol import VerifiableBinomialProtocol
from repro.core.simulator import simulate_curator_view, simulate_mpc_view
from repro.dp.binomial import sample_binomial
from repro.errors import ParameterError
from repro.utils.rng import SeededRNG

GROUP = "p64-sim"


def curator_params(nb=24):
    return setup(1.0, 2**-10, num_provers=1, group=GROUP, nb_override=nb)


def public_client_commitments(params, bits, seed="cc"):
    """What the simulator legitimately sees: the broadcast commitments."""
    rng = SeededRNG(seed)
    commitments = []
    for i, bit in enumerate(bits):
        broadcast, _ = Client(f"c{i}", [bit], rng.fork(f"c{i}")).submit(params)
        commitments.append(broadcast.share_commitments[0][0])
    return commitments


class TestCuratorSimulator:
    def test_simulated_view_passes_line13(self):
        params = curator_params()
        bits = [1, 0, 1]
        commitments = public_client_commitments(params, bits)
        ideal = sum(bits) + sample_binomial(params.nb, SeededRNG("ideal"))
        view = simulate_curator_view(params, commitments, ideal, SeededRNG("sim"))
        assert view.verify_line13(params, commitments)

    def test_simulated_output_equals_ideal(self):
        params = curator_params()
        commitments = public_client_commitments(params, [1, 1])
        view = simulate_curator_view(params, commitments, 40, SeededRNG("s"))
        assert view.y == 40

    def test_simulated_bits_uniform(self):
        params = curator_params(nb=64)
        commitments = public_client_commitments(params, [1])
        all_bits = []
        for t in range(40):
            view = simulate_curator_view(params, commitments, 5, SeededRNG(f"b{t}"))
            all_bits.extend(view.public_bits)
        assert chi_square_uniform(all_bits) > 0.001

    def test_simulator_never_sees_witnesses(self):
        """API-level guarantee: inputs are commitments (no openings) and
        the ideal output — nothing else."""
        params = curator_params()
        view = simulate_curator_view(params, [], 7, SeededRNG("w"))
        assert view.verify_line13(params, [])

    def test_shape_matches_real_protocol(self):
        params = curator_params()
        commitments = public_client_commitments(params, [0, 1])
        view = simulate_curator_view(params, commitments, 9, SeededRNG("sh"))
        assert len(view.coin_commitments) == params.nb
        assert len(view.public_bits) == params.nb
        assert 0 <= view.z < params.q

    def test_requires_curator_params(self):
        params = setup(1.0, 2**-10, num_provers=2, group=GROUP, nb_override=24)
        with pytest.raises(ParameterError):
            simulate_curator_view(params, [], 0, SeededRNG("x"))

    def test_requires_dimension_one(self):
        params = setup(1.0, 2**-10, dimension=2, group=GROUP, nb_override=24)
        with pytest.raises(ParameterError):
            simulate_curator_view(params, [], 0, SeededRNG("x"))


class TestIndistinguishability:
    def test_y_distribution_matches_real_runs(self):
        """Distinguisher's main statistic: the released y.  Real protocol
        runs and simulated views (fed the ideal MBin output) must produce
        the same distribution of y - Q(X)."""
        nb = 16
        params = curator_params(nb=nb)
        bits = [1, 0, 1]
        true = sum(bits)

        real_noise = []
        for t in range(80):
            protocol = VerifiableBinomialProtocol(params, rng=SeededRNG(f"real{t}"))
            result = protocol.run_bits(bits)
            real_noise.append(result.release.raw[0] - true)

        sim_noise = []
        commitments = public_client_commitments(params, bits)
        for t in range(80):
            rng = SeededRNG(f"sim{t}")
            ideal = true + sample_binomial(nb, rng)  # MBin's ideal output
            view = simulate_curator_view(params, commitments, ideal, rng)
            sim_noise.append(view.y - true)

        assert binomial_goodness_of_fit(real_noise, nb) > 0.001
        assert binomial_goodness_of_fit(sim_noise, nb) > 0.001

    def test_z_uniform_in_both_worlds(self):
        """The aggregate randomness z is uniform on Z_q in real runs
        (sum of fresh uniforms) and in simulated views (sampled)."""
        params = curator_params(nb=8)
        commitments = public_client_commitments(params, [1])
        buckets_sim = [0] * 4
        for t in range(200):
            view = simulate_curator_view(params, commitments, 3, SeededRNG(f"z{t}"))
            buckets_sim[view.z * 4 // params.q] += 1
        assert max(buckets_sim) - min(buckets_sim) < 80


class TestMpcSimulator:
    def test_honest_share_view_verifies(self):
        params = setup(1.0, 2**-10, num_provers=2, group=GROUP, nb_override=16)
        rng = SeededRNG("mpc")
        bits = [1, 0, 1, 1]
        broadcasts = []
        for i, bit in enumerate(bits):
            b, _ = Client(f"c{i}", [bit], rng.fork(f"c{i}")).submit(params)
            broadcasts.append(b)
        per_prover = [
            [b.share_commitments[k][0] for b in broadcasts] for k in range(2)
        ]
        # Corrupted prover used X1 (arbitrary); ideal output from MBin.
        x1 = 12345 % params.q
        ideal = (
            x1
            + sample_binomial(params.nb, rng)
            + sum(bits)  # stand-in for X2 + Δ2 (any y works: ZK for all y)
        ) % params.q
        y1, view2 = simulate_mpc_view(params, per_prover, x1, ideal, rng)
        assert (y1 + view2.y) % params.q == ideal
        assert view2.verify_line13(params, per_prover[1])

    def test_requires_two_provers(self):
        params = curator_params()
        with pytest.raises(ParameterError):
            simulate_mpc_view(params, [[]], 0, 0, SeededRNG("x"))


class TestGeneralKSimulator:
    def _setup(self, k, bits, seed="gen"):
        params = setup(1.0, 2**-10, num_provers=k, group=GROUP, nb_override=12)
        rng = SeededRNG(seed)
        broadcasts = []
        for i, bit in enumerate(bits):
            b, _ = Client(f"c{i}", [bit], rng.fork(f"c{i}")).submit(params)
            broadcasts.append(b)
        per_prover = [
            [b.share_commitments[j][0] for b in broadcasts] for j in range(k)
        ]
        return params, per_prover, rng

    @pytest.mark.parametrize("k,corrupted", [(3, {0}), (3, {0, 2}), (4, {1})])
    def test_views_verify_and_sum(self, k, corrupted):
        from repro.core.simulator import simulate_mpc_view_general

        params, per_prover, rng = self._setup(k, [1, 0, 1], seed=f"g{k}{len(corrupted)}")
        corrupted_inputs = {j: (j + 1) * 111 % params.q for j in corrupted}
        ideal = 424242 % params.q
        outputs, views = simulate_mpc_view_general(
            params, per_prover, corrupted_inputs, ideal, rng
        )
        assert set(outputs) == corrupted
        assert set(views) == set(range(k)) - corrupted
        total = (sum(outputs.values()) + sum(v.y for v in views.values())) % params.q
        assert total == ideal
        for j, view in views.items():
            assert view.verify_line13(params, per_prover[j])

    def test_rejects_full_corruption(self):
        from repro.core.simulator import simulate_mpc_view_general

        params, per_prover, rng = self._setup(2, [1])
        with pytest.raises(ParameterError):
            simulate_mpc_view_general(params, per_prover, {0: 1, 1: 2}, 0, rng)

    def test_rejects_bad_commitment_arity(self):
        from repro.core.simulator import simulate_mpc_view_general

        params, per_prover, rng = self._setup(3, [1])
        with pytest.raises(ParameterError):
            simulate_mpc_view_general(params, per_prover[:2], {0: 1}, 0, rng)
