"""Soundness of ΠBin (Theorem 4.1, second claim).

Every deviation from the protocol — at each line of the soundness case
analysis — is caught and publicly attributed; harmless deviations (biased
private coins) are *not* flagged.
"""

import pytest

from repro.core.client import Client, InconsistentShareClient, NonBinaryClient
from repro.core.messages import ClientStatus, ProverStatus
from repro.core.params import setup
from repro.core.protocol import VerifiableBinomialProtocol
from repro.core.prover import (
    BiasedCoinProver,
    InputDroppingProver,
    InputInjectingProver,
    NonBitCoinProver,
    OutputTamperingProver,
    Prover,
    SkipAdjustmentProver,
)
from repro.utils.rng import SeededRNG

GROUP = "p64-sim"


def params_k(k, nb=32, dimension=1):
    return setup(
        1.0, 2**-10, num_provers=k, group=GROUP, nb_override=nb, dimension=dimension
    )


def run_with_provers(provers, params, bits, seed="s"):
    protocol = VerifiableBinomialProtocol(params, provers=provers, rng=SeededRNG(seed))
    return protocol.run_bits(bits)


BITS = [1, 0, 1, 1, 0, 0, 1]


class TestCheatingProversCaught:
    def test_output_tampering_fails_final_check(self):
        params = params_k(1)
        cheater = OutputTamperingProver("prover-0", params, SeededRNG("t"), bias=5)
        result = run_with_provers([cheater], params, BITS)
        assert not result.release.accepted
        assert result.release.audit.provers["prover-0"] is ProverStatus.FAILED_FINAL_CHECK

    @pytest.mark.parametrize("bias", [1, -3, 1000])
    def test_any_bias_caught(self, bias):
        params = params_k(1)
        cheater = OutputTamperingProver("prover-0", params, SeededRNG("b"), bias=bias)
        result = run_with_provers([cheater], params, BITS, seed=f"b{bias}")
        assert not result.release.accepted

    def test_skip_adjustment_fails(self):
        params = params_k(1)
        cheater = SkipAdjustmentProver("prover-0", params, SeededRNG("sk"))
        result = run_with_provers([cheater], params, BITS)
        assert not result.release.accepted
        assert result.release.audit.provers["prover-0"] is ProverStatus.FAILED_FINAL_CHECK

    def test_non_bit_coin_rejected_at_proof_stage(self):
        params = params_k(1)
        cheater = NonBitCoinProver("prover-0", params, SeededRNG("nb"))
        result = run_with_provers([cheater], params, BITS)
        assert not result.release.accepted
        assert result.release.audit.provers["prover-0"] is ProverStatus.BAD_COIN_PROOF

    def test_input_dropping_fails(self):
        params = params_k(2)
        provers = [
            Prover("prover-0", params, SeededRNG("h")),
            InputDroppingProver("prover-1", params, SeededRNG("d"), victim="client-0"),
        ]
        result = run_with_provers(provers, params, BITS)
        assert not result.release.accepted
        assert result.release.audit.provers["prover-1"] is ProverStatus.FAILED_FINAL_CHECK
        # Guaranteed inclusion: the victim is still publicly valid.
        assert result.release.audit.clients["client-0"] is ClientStatus.VALID

    def test_input_injection_fails(self):
        params = params_k(2)
        provers = [
            Prover("prover-0", params, SeededRNG("h")),
            InputInjectingProver("prover-1", params, SeededRNG("i"), extra=4),
        ]
        result = run_with_provers(provers, params, BITS)
        assert not result.release.accepted
        assert result.release.audit.provers["prover-1"] is ProverStatus.FAILED_FINAL_CHECK

    def test_honest_prover_not_blamed_for_peer_cheating(self):
        params = params_k(2)
        provers = [
            Prover("prover-0", params, SeededRNG("h2")),
            OutputTamperingProver("prover-1", params, SeededRNG("c2"), bias=9),
        ]
        result = run_with_provers(provers, params, BITS)
        audit = result.release.audit
        assert audit.provers["prover-0"] is ProverStatus.HONEST
        assert audit.provers["prover-1"] is ProverStatus.FAILED_FINAL_CHECK
        assert not result.release.accepted


class TestHarmlessDeviations:
    def test_biased_private_coins_accepted(self):
        """The paper explicitly allows arbitrarily-biased private coins:
        v̂ = v ⊕ b is uniform because the Morra bit is."""
        params = params_k(1, nb=24)
        cheater = BiasedCoinProver("prover-0", params, SeededRNG("bias"))
        result = run_with_provers([cheater], params, BITS)
        assert result.release.accepted
        assert result.release.audit.provers["prover-0"] is ProverStatus.HONEST

    def test_biased_coins_noise_still_binomial(self):
        from repro.analysis.distributions import binomial_goodness_of_fit

        nb = 16
        params = params_k(1, nb=nb)
        noises = []
        for t in range(100):
            cheater = BiasedCoinProver("prover-0", params, SeededRNG(f"bc{t}"))
            protocol = VerifiableBinomialProtocol(
                params, provers=[cheater], rng=SeededRNG(f"r{t}")
            )
            result = protocol.run_bits([1])
            noises.append(result.release.raw[0] - 1)
        assert binomial_goodness_of_fit(noises, nb) > 0.001


class TestDishonestClients:
    def test_non_binary_client_rejected(self):
        params = params_k(2)
        protocol = VerifiableBinomialProtocol(params, rng=SeededRNG("nb"))
        clients = [Client(f"c{i}", [1], SeededRNG(f"c{i}")) for i in range(4)]
        clients.append(NonBinaryClient("evil", [5], SeededRNG("evil")))
        result = protocol.run(clients)
        assert result.release.accepted  # provers are honest; release stands
        assert result.release.audit.clients["evil"] is ClientStatus.INVALID_PROOF
        # The four honest inputs (all 1) are counted; evil's 5 votes are not.
        noise_max = 2 * params.nb
        assert 4 <= result.release.raw[0] <= 4 + noise_max

    def test_inconsistent_share_client_excluded_everywhere(self):
        params = params_k(2)
        protocol = VerifiableBinomialProtocol(params, rng=SeededRNG("inc"))
        clients = [Client(f"c{i}", [1], SeededRNG(f"c{i}")) for i in range(3)]
        clients.append(
            InconsistentShareClient("evil", [1], victim_prover=1, rng=SeededRNG("e"))
        )
        result = protocol.run(clients)
        assert result.release.accepted
        assert result.release.audit.clients["evil"] is ClientStatus.BAD_OPENING
        assert result.release.audit.clients["c0"] is ClientStatus.VALID

    def test_release_excludes_rejected_inputs(self):
        """With zero noise coins impossible (nb>=1), run many trials:
        the rejected client's bit must never be counted.  Here nb small
        and inputs chosen so the bound is tight."""
        params = params_k(1, nb=4)
        protocol = VerifiableBinomialProtocol(params, rng=SeededRNG("ex"))
        clients = [Client("c0", [0], SeededRNG("c0"))]
        clients.append(NonBinaryClient("evil", [7], SeededRNG("ev")))
        result = protocol.run(clients)
        # Only honest input 0 plus noise in [0, 4]: raw <= 4 < 7.
        assert result.release.raw[0] <= 4


class TestMultipleCheaters:
    def test_two_cheating_provers_both_named(self):
        params = params_k(3)
        provers = [
            Prover("prover-0", params, SeededRNG("p0")),
            OutputTamperingProver("prover-1", params, SeededRNG("p1"), bias=2),
            SkipAdjustmentProver("prover-2", params, SeededRNG("p2")),
        ]
        result = run_with_provers(provers, params, BITS)
        audit = result.release.audit
        assert audit.provers["prover-0"] is ProverStatus.HONEST
        assert audit.provers["prover-1"] is ProverStatus.FAILED_FINAL_CHECK
        assert audit.provers["prover-2"] is ProverStatus.FAILED_FINAL_CHECK
        assert not result.release.accepted

    def test_cheating_client_and_prover_simultaneously(self):
        params = params_k(2)
        provers = [
            Prover("prover-0", params, SeededRNG("p0")),
            OutputTamperingProver("prover-1", params, SeededRNG("p1"), bias=3),
        ]
        protocol = VerifiableBinomialProtocol(params, provers=provers, rng=SeededRNG("cc"))
        clients = [Client(f"c{i}", [1], SeededRNG(f"c{i}")) for i in range(3)]
        clients.append(NonBinaryClient("evil", [9], SeededRNG("e")))
        result = protocol.run(clients)
        audit = result.release.audit
        assert audit.clients["evil"] is ClientStatus.INVALID_PROOF
        assert audit.provers["prover-1"] is ProverStatus.FAILED_FINAL_CHECK
        assert not result.release.accepted
