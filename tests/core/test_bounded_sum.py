"""The bounded-sum extension: range proofs + verifiable scaled noise."""

import pytest

from repro.core.bounded_sum import VerifiableBoundedSum
from repro.errors import ParameterError
from repro.utils.rng import SeededRNG

GROUP = "p64-sim"


def build(bits=4, nb=16, seed="bs"):
    return VerifiableBoundedSum(
        bits, epsilon=1.0, delta=2**-10, group=GROUP, nb_override=nb,
        rng=SeededRNG(seed),
    )


class TestSubmissions:
    def test_submit_and_validate(self):
        system = build()
        submission, openings = system.submit("c0", 11, SeededRNG("s"))
        assert len(submission.bit_commitments) == 4
        assert system.validate(submission)

    def test_derived_commitment_opens_to_value(self):
        system = build()
        submission, openings = system.submit("c0", 13, SeededRNG("d"))
        derived = submission.derived_value_commitment(system.params)
        value = sum((1 << j) * o.value for j, o in enumerate(openings))
        randomness = sum((1 << j) * o.randomness for j, o in enumerate(openings))
        q = system.params.q
        assert system.params.pedersen.commit(value % q, randomness % q).element == derived.element
        assert value == 13

    def test_out_of_range_rejected_at_submit(self):
        system = build(bits=3)
        with pytest.raises(ParameterError):
            system.submit("c0", 8, SeededRNG("x"))
        with pytest.raises(ParameterError):
            system.submit("c0", -1, SeededRNG("x"))

    def test_foreign_proof_fails_validation(self):
        system = build()
        sub_a, _ = system.submit("alice", 5, SeededRNG("a"))
        sub_b, _ = system.submit("bob", 5, SeededRNG("b"))
        from repro.core.bounded_sum import RangeCommitment

        franken = RangeCommitment("alice", sub_a.bit_commitments, sub_b.bit_proofs)
        assert not system.validate(franken)

    def test_wrong_width_fails_validation(self):
        system = build(bits=4)
        sub, _ = system.submit("c", 3, SeededRNG("w"))
        from repro.core.bounded_sum import RangeCommitment

        short = RangeCommitment("c", sub.bit_commitments[:3], sub.bit_proofs[:3])
        assert not system.validate(short)


class TestProtocolRun:
    def test_honest_run_accepts(self):
        system = build(nb=8, seed="run")
        values = [3, 7, 12, 0, 15]
        submissions = [
            system.submit(f"c{i}", v, SeededRNG(f"c{i}")) for i, v in enumerate(values)
        ]
        release = system.run(submissions, curator_rng=SeededRNG("cur"))
        assert release.accepted
        assert release.rejected_clients == ()
        true = sum(values)
        max_dev = system.sensitivity * system.params.nb / 2
        assert abs(release.estimate - true) <= max_dev + 1

    def test_noise_in_scaled_support(self):
        system = build(nb=8, seed="sup")
        submissions = [system.submit("c0", 5, SeededRNG("c0"))]
        release = system.run(submissions, curator_rng=SeededRNG("cur2"))
        noise = release.raw - 5
        assert 0 <= noise <= system.sensitivity * system.params.nb
        assert noise % system.sensitivity == 0  # noise is Δ·Binomial

    def test_tampering_curator_caught(self):
        system = build(nb=8, seed="tam")
        submissions = [system.submit("c0", 9, SeededRNG("c0"))]
        release = system.run(
            submissions, curator_rng=SeededRNG("cur3"), tamper_bias=5
        )
        assert not release.accepted

    def test_invalid_submission_excluded(self):
        system = build(nb=8, seed="exc")
        good = system.submit("good", 6, SeededRNG("g"))
        bad_sub, bad_open = system.submit("bad", 6, SeededRNG("b"))
        from repro.core.bounded_sum import RangeCommitment

        franken = (
            RangeCommitment("bad", bad_sub.bit_commitments[::-1], bad_sub.bit_proofs),
            bad_open,
        )
        release = system.run([good, franken], curator_rng=SeededRNG("cur4"))
        assert release.accepted
        assert release.rejected_clients == ("bad",)
        # Only 'good' counted: raw <= 6 + Δ·nb.
        assert release.raw <= 6 + system.sensitivity * system.params.nb

    def test_parameter_validation(self):
        with pytest.raises(ParameterError):
            VerifiableBoundedSum(0, 1.0, 2**-10, group=GROUP)
        with pytest.raises(ParameterError):
            VerifiableBoundedSum(33, 1.0, 2**-10, group=GROUP)

    def test_privacy_calibration_scales_with_sensitivity(self):
        """Wider values ⇒ smaller per-coin ε ⇒ more coins."""
        narrow = VerifiableBoundedSum(2, 1.0, 2**-10, group=GROUP)
        wide = VerifiableBoundedSum(8, 1.0, 2**-10, group=GROUP)
        assert wide.params.nb > narrow.params.nb
