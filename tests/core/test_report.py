"""Run reports: JSON-serializable public summaries."""

import json

from repro.core.params import setup
from repro.core.protocol import VerifiableBinomialProtocol
from repro.core.prover import OutputTamperingProver
from repro.core.report import render_report, run_report
from repro.utils.rng import SeededRNG

GROUP = "p64-sim"


def run_once(provers=None, seed="rep"):
    params = setup(1.0, 2**-10, num_provers=1, group=GROUP, nb_override=8)
    protocol = VerifiableBinomialProtocol(params, provers=provers, rng=SeededRNG(seed))
    return params, protocol.run_bits([1, 0, 1])


class TestRunReport:
    def test_schema_and_fields(self):
        params, result = run_once()
        report = run_report(params, result)
        assert report["schema"] == "repro.run-report.v1"
        assert report["parameters"]["nb"] == 8
        assert report["release"]["accepted"] is True
        assert len(report["audit"]["clients"]) == 3
        assert report["costs"]["network_messages"] > 0

    def test_json_serializable(self):
        params, result = run_once(seed="js")
        text = render_report(params, result)
        parsed = json.loads(text)
        assert parsed["release"]["raw"] == list(result.release.raw)

    def test_estimate_consistent(self):
        params, result = run_once(seed="est")
        report = run_report(params, result)
        raw = report["release"]["raw"][0]
        est = report["release"]["estimate"][0]
        assert est == raw - report["release"]["noise_mean_removed"]

    def test_cheater_visible_in_report(self):
        params = setup(1.0, 2**-10, num_provers=1, group=GROUP, nb_override=8)
        cheater = OutputTamperingProver("prover-0", params, SeededRNG("c"), bias=3)
        protocol = VerifiableBinomialProtocol(params, provers=[cheater], rng=SeededRNG("r"))
        result = protocol.run_bits([1])
        report = run_report(params, result)
        assert report["release"]["accepted"] is False
        assert report["audit"]["provers"]["prover-0"] == "failed-final-check"

    def test_report_contains_only_public_data(self):
        """No share values, openings, or coin values anywhere."""
        params, result = run_once(seed="pub")
        text = render_report(params, result)
        for secret_marker in ("opening", "randomness", "share_value", "coin_value"):
            assert secret_marker not in text
