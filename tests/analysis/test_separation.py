"""Theorem 5.2 demonstration: both horns of the impossibility."""

import pytest

from repro.analysis.separation import (
    ElGamalCommitmentScheme,
    UnboundedEquivocator,
    demonstrate_separation,
    discrete_log_bsgs,
)
from repro.crypto.pedersen import Opening, PedersenParams
from repro.crypto.schnorr_group import SchnorrGroup
from repro.errors import ParameterError
from repro.utils.rng import SeededRNG


@pytest.fixture(scope="module")
def toy_group():
    return SchnorrGroup.named("p32-sim")


class TestBsgsOracle:
    def test_recovers_dlog(self, toy_group):
        g = toy_group.generator()
        for w in (0, 1, 12345, toy_group.order - 1):
            assert discrete_log_bsgs(toy_group, g, g ** w) == w

    def test_refuses_production_groups(self, group64):
        g = group64.generator()
        with pytest.raises(ParameterError):
            discrete_log_bsgs(group64, g, g ** 5)


class TestPedersenHorn:
    def test_equivocation(self, toy_group):
        """Unbounded prover opens one commitment to two values."""
        params = PedersenParams(toy_group)
        rng = SeededRNG("eq")
        c, o = params.commit_fresh(100, rng)
        equivocator = UnboundedEquivocator(params)
        forged = equivocator.equivocate(o, 107)
        assert forged.value == 107
        assert params.opens_to(c, forged)  # binding broken
        assert params.opens_to(c, o)  # original still opens too

    def test_trapdoor_is_dlog(self, toy_group):
        params = PedersenParams(toy_group)
        equivocator = UnboundedEquivocator(params)
        assert params.g ** equivocator.trapdoor == params.h

    def test_forge_tally_passes_line13_shape(self, toy_group):
        """The forged (y', z') satisfies Com(y', z') == Com(y, z): the
        exact check a ΠBin verifier runs on Line 13."""
        params = PedersenParams(toy_group)
        rng = SeededRNG("ft")
        y, z = 42, rng.field_element(params.q)
        equivocator = UnboundedEquivocator(params)
        y2, z2 = equivocator.forge_tally(y, z, bias=13)
        assert y2 == (42 + 13) % params.q
        assert params.commit(y, z).element == params.commit(y2, z2).element


class TestElGamalHorn:
    def test_perfectly_binding(self, toy_group):
        """No second opening exists: the commitment determines the value
        (g^r fixes r, then c2/h^r fixes g^x)."""
        scheme = ElGamalCommitmentScheme(toy_group)
        c, r = scheme.commit(5, SeededRNG("b"))
        assert scheme.verify(c, 5, r)
        assert not scheme.verify(c, 6, r)

    def test_unbounded_extraction(self, toy_group):
        scheme = ElGamalCommitmentScheme(toy_group)
        for secret in (0, 1, 999):
            c, _ = scheme.commit(secret, SeededRNG(f"s{secret}"))
            assert scheme.unbounded_extract(c) == secret


class TestReport:
    def test_demonstration(self):
        report = demonstrate_separation(bias=7, secret=1, rng=SeededRNG("demo"))
        assert report.pedersen_equivocation_succeeded
        assert report.elgamal_extraction_succeeded
        assert report.extracted_value == 1
        assert "Theorem 5.2" in report.summary()
