"""Private selection accuracy comparison."""

import pytest

from repro.analysis.selection import selection_accuracy
from repro.errors import ParameterError
from repro.utils.rng import SeededRNG

DELTA = 2**-10


class TestSelectionAccuracy:
    def test_wide_margin_everyone_wins(self):
        acc = selection_accuracy([500, 10, 5], 1.0, DELTA, trials=60, rng=SeededRNG("w"))
        assert acc.histogram_argmax > 0.9
        assert acc.exponential > 0.9
        assert acc.noisy_max > 0.9
        assert acc.margin == 490

    def test_selection_mechanisms_beat_histogram_argmax_on_tight_race(self):
        """The price of verifiability: releasing the whole noisy histogram
        (ΠBin's route) recovers a narrow winner less often than dedicated
        selection mechanisms at the same ε — because the Binomial noise
        needed for (ε, δ) on the full histogram dwarfs the margin."""
        counts = [105, 100, 95, 90]
        acc = selection_accuracy(counts, 0.5, DELTA, trials=150, rng=SeededRNG("t"))
        assert acc.exponential >= acc.histogram_argmax
        assert acc.noisy_max >= acc.histogram_argmax

    def test_accuracy_improves_with_epsilon(self):
        counts = [60, 50]
        low = selection_accuracy(counts, 0.05, DELTA, trials=150, rng=SeededRNG("l"))
        high = selection_accuracy(counts, 5.0, DELTA, trials=150, rng=SeededRNG("h"))
        assert high.exponential >= low.exponential
        assert high.noisy_max >= low.noisy_max

    def test_validation(self):
        with pytest.raises(ParameterError):
            selection_accuracy([1, 2], 1.0, DELTA, trials=0)
        with pytest.raises(ParameterError):
            selection_accuracy([1], 1.0, DELTA, trials=5)
