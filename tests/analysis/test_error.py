"""DP-Error relationships: central O(1/ε) vs local O(√n/ε)."""

import pytest

from repro.analysis.error import empirical_error, error_sweep, protocol_error
from repro.dp.binomial import BinomialMechanism
from repro.dp.laplace import LaplaceMechanism
from repro.dp.randomized_response import RandomizedResponse
from repro.errors import ParameterError
from repro.utils.rng import SeededRNG

DELTA = 2**-10


class TestCentralError:
    def test_error_decreases_with_epsilon(self):
        rng = SeededRNG("eps")
        dataset = [1] * 100
        lo = empirical_error(BinomialMechanism(0.5, DELTA), dataset, 150, rng)
        hi = empirical_error(BinomialMechanism(2.0, DELTA), dataset, 150, rng)
        assert hi < lo

    def test_error_independent_of_n(self):
        rng = SeededRNG("n")
        mech = LaplaceMechanism(1.0)
        small = empirical_error(mech, [1] * 10, 400, rng)
        large = empirical_error(mech, [1] * 10_000, 400, rng)
        assert abs(small - large) < 0.5  # both ~1.0


class TestLocalError:
    def test_rr_error_grows_with_n(self):
        rng = SeededRNG("rr")
        rr = RandomizedResponse(1.0)
        small = empirical_error(rr, [1 if i % 2 else 0 for i in range(100)], 40, rng)
        large = empirical_error(rr, [1 if i % 2 else 0 for i in range(10_000)], 40, rng)
        assert large > 3 * small  # sqrt(100) = 10x expected

    def test_central_beats_local_at_scale(self):
        rng = SeededRNG("cb")
        dataset = [1 if i % 3 == 0 else 0 for i in range(5_000)]
        central = empirical_error(BinomialMechanism(1.0, DELTA), dataset, 50, rng)
        local = empirical_error(RandomizedResponse(1.0), dataset, 50, rng)
        assert local > 2 * central


class TestSweep:
    def test_sweep_rows(self):
        rng = SeededRNG("sw")
        rows = error_sweep(
            {"binomial": BinomialMechanism(1.0, DELTA), "laplace": LaplaceMechanism(1.0)},
            [1] * 50,
            trials=30,
            rng=rng,
        )
        assert {r.mechanism for r in rows} == {"binomial", "laplace"}
        assert all(r.n == 50 and r.error >= 0 for r in rows)

    def test_invalid_trials(self):
        with pytest.raises(ParameterError):
            empirical_error(LaplaceMechanism(1.0), [1], 0)


class TestProtocolError:
    def test_protocol_error_matches_mechanism_error(self):
        """Full ΠBin runs have the same Err as the bare Binomial mechanism
        (completeness: the protocol realizes exactly that distribution)."""
        nb = 16
        err = protocol_error(
            [1, 0, 1], 1.0, DELTA, trials=25, nb_override=nb, group="p64-sim"
        )
        expected = BinomialMechanism(1.0, DELTA)
        expected.nb = nb
        # E|Binomial(16,1/2) - 8| ≈ sqrt(16/2π) ≈ 1.6
        assert 0.5 < err < 4.0

    def test_mpc_error_exceeds_curator(self):
        """K=2 adds two noise copies: Err grows by ~sqrt(2)."""
        k1 = protocol_error(
            [1], 1.0, DELTA, num_provers=1, trials=40, nb_override=24, group="p64-sim",
            seed="e1",
        )
        k2 = protocol_error(
            [1], 1.0, DELTA, num_provers=2, trials=40, nb_override=24, group="p64-sim",
            seed="e2",
        )
        assert k2 > k1
