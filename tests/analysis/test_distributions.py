"""Statistical test helpers."""

import pytest

from repro.analysis.distributions import (
    binomial_goodness_of_fit,
    chi_square_uniform,
    total_variation_from_binomial,
)
from repro.dp.binomial import sample_binomial
from repro.errors import ParameterError
from repro.utils.rng import SeededRNG


class TestChiSquareUniform:
    def test_fair_bits_pass(self):
        rng = SeededRNG("fair")
        bits = [rng.coin() for _ in range(3000)]
        assert chi_square_uniform(bits) > 0.001

    def test_biased_bits_fail(self):
        bits = [1] * 900 + [0] * 100
        assert chi_square_uniform(bits) < 1e-6

    def test_empty_rejected(self):
        with pytest.raises(ParameterError):
            chi_square_uniform([])


class TestBinomialFit:
    def test_true_binomial_passes(self):
        rng = SeededRNG("bin")
        samples = [sample_binomial(30, rng) for _ in range(400)]
        assert binomial_goodness_of_fit(samples, 30) > 0.001

    def test_shifted_binomial_fails(self):
        rng = SeededRNG("shift")
        samples = [sample_binomial(30, rng) + 6 for _ in range(400)]
        assert binomial_goodness_of_fit(samples, 30) < 1e-4

    def test_constant_fails(self):
        assert binomial_goodness_of_fit([15] * 300, 30) < 1e-4

    def test_empty_rejected(self):
        with pytest.raises(ParameterError):
            binomial_goodness_of_fit([], 10)


class TestTotalVariation:
    def test_matching_distribution_small_tv(self):
        rng = SeededRNG("tv")
        samples = [sample_binomial(20, rng) for _ in range(3000)]
        assert total_variation_from_binomial(samples, 20) < 0.1

    def test_disjoint_distribution_tv_near_one(self):
        samples = [100] * 500  # far outside Binomial(20, 1/2) support
        assert total_variation_from_binomial(samples, 20) > 0.95

    def test_empty_rejected(self):
        with pytest.raises(ParameterError):
            total_variation_from_binomial([], 10)
