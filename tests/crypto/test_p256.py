"""NIST P-256 backend: domain parameters, laws, encoding, integration."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.crypto.p256 import P256Group
from repro.errors import EncodingError, NotOnGroupError
from repro.utils.rng import SeededRNG

scalars = st.integers(min_value=0, max_value=2**130)


@pytest.fixture(scope="module")
def p256():
    return P256Group.instance()


class TestDomainParameters:
    def test_generator_on_curve(self, p256):
        x, y = p256.generator().affine()
        # y^2 == x^3 - 3x + b mod p (checked inside _on_curve).
        assert P256Group._on_curve(x, y)

    def test_generator_order(self, p256):
        assert p256.generator() ** p256.order == p256.identity()
        assert p256.generator() ** 1 == p256.generator()

    def test_known_2g(self, p256):
        """2·G for P-256 (public test vector)."""
        x, _ = (p256.generator() ** 2).affine()
        assert x == 0x7CF27B188D034F7E8A52380304B51AC3C08969E277F21B35A60B48FC47669978

    def test_order_is_prime(self, p256):
        from repro.utils.numth import is_probable_prime

        assert is_probable_prime(p256.order)


class TestGroupLaws:
    @given(a=scalars, b=scalars)
    @settings(max_examples=8, deadline=None)
    def test_exponent_addition(self, p256, a, b):
        g = p256.generator()
        assert (g ** a) * (g ** b) == g ** (a + b)

    @given(a=scalars)
    @settings(max_examples=8, deadline=None)
    def test_inverse(self, p256, a):
        x = p256.generator() ** a
        assert x * ~x == p256.identity()

    def test_identity_neutral(self, p256):
        g = p256.generator()
        assert g * p256.identity() == g
        assert p256.identity().is_infinity()

    def test_double_matches_add(self, p256):
        g = p256.generator()
        assert g.double() == g * g


class TestEncoding:
    @given(a=scalars)
    @settings(max_examples=10, deadline=None)
    def test_roundtrip(self, p256, a):
        point = p256.generator() ** a
        assert p256.from_bytes(point.to_bytes()) == point

    def test_identity_roundtrip(self, p256):
        assert p256.from_bytes(p256.identity().to_bytes()).is_infinity()

    def test_compression_tag_checked(self, p256):
        data = bytearray(p256.generator().to_bytes())
        data[0] = 0x05
        with pytest.raises(EncodingError):
            p256.from_bytes(bytes(data))

    def test_off_curve_x_rejected(self, p256):
        # Find an x with no curve point (about half of all x).
        for x in range(2, 50):
            data = bytes([2]) + x.to_bytes(32, "big")
            try:
                p256.from_bytes(data)
            except NotOnGroupError:
                break
        else:  # pragma: no cover
            pytest.fail("no off-curve x found in range")

    def test_wrong_length(self, p256):
        with pytest.raises(EncodingError):
            p256.from_bytes(b"\x02" * 10)


class TestHashToGroup:
    def test_on_curve_and_deterministic(self, p256):
        h = p256.hash_to_group(b"pedersen-h")
        assert p256.from_bytes(h.to_bytes()) == h
        assert h == p256.hash_to_group(b"pedersen-h")
        assert h != p256.hash_to_group(b"other")

    def test_prime_order_subgroup(self, p256):
        h = p256.hash_to_group(b"x")
        assert h ** p256.order == p256.identity()


class TestIntegration:
    def test_pedersen_and_bit_proofs_over_p256(self, p256):
        from repro.crypto.fiat_shamir import Transcript
        from repro.crypto.pedersen import PedersenParams
        from repro.crypto.sigma.or_bit import prove_bit, verify_bit

        pp = PedersenParams(p256)
        rng = SeededRNG("p256")
        for bit in (0, 1):
            c, o = pp.commit_fresh(bit, rng)
            proof = prove_bit(pp, c, o, Transcript("t"), rng)
            verify_bit(pp, c, proof, Transcript("t"))

    def test_homomorphism_over_p256(self, p256):
        from repro.crypto.pedersen import PedersenParams

        pp = PedersenParams(p256)
        lhs = pp.commit(3, 4) * pp.commit(5, 6)
        assert lhs.element == pp.commit(8, 10).element

    def test_multiexp_over_p256(self, p256):
        g = p256.generator()
        assert p256.multi_scale([g ** 2, g ** 3], [5, 4]) == g ** 22
