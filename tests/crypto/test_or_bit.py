"""The CDS94 Σ-OR bit proof — the core verification gadget of ΠBin."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.crypto.fiat_shamir import Transcript
from repro.crypto.pedersen import Opening
from repro.crypto.sigma.or_bit import (
    BitProof,
    branch_statements,
    prove_bit,
    prove_bits,
    simulate_bit_transcript,
    verify_bit,
    verify_bits,
)
from repro.errors import ParameterError, ProofRejected
from repro.utils.rng import SeededRNG


class TestCompleteness:
    @pytest.mark.parametrize("bit", [0, 1])
    def test_honest_proof_verifies(self, pedersen64, bit):
        rng = SeededRNG(f"c{bit}")
        c, o = pedersen64.commit_fresh(bit, rng)
        proof = prove_bit(pedersen64, c, o, Transcript("t"), rng)
        verify_bit(pedersen64, c, proof, Transcript("t"))

    @given(st.integers(min_value=0, max_value=2**32))
    @settings(max_examples=20)
    def test_many_randomness_values(self, pedersen64, seed):
        rng = SeededRNG(f"r{seed}")
        bit = seed & 1
        c, o = pedersen64.commit_fresh(bit, rng)
        proof = prove_bit(pedersen64, c, o, Transcript("t"), rng)
        verify_bit(pedersen64, c, proof, Transcript("t"))

    def test_batch_roundtrip(self, pedersen64):
        rng = SeededRNG("batch")
        bits = [rng.coin() for _ in range(20)]
        cs, os_ = pedersen64.commit_vector(bits, rng)
        proofs = prove_bits(pedersen64, cs, os_, Transcript("b"), rng)
        verify_bits(pedersen64, cs, proofs, Transcript("b"))

    def test_challenge_split_verified(self, pedersen64, rng):
        c, o = pedersen64.commit_fresh(0, rng)
        proof = prove_bit(pedersen64, c, o, Transcript("t"), rng)
        assert (proof.e0 + proof.e1) % pedersen64.q == Transcript_challenge(pedersen64, c, proof)


def Transcript_challenge(pedersen, commitment, proof):
    """Recompute the FS challenge the verifier derives."""
    t = Transcript("t")
    t.append_bytes("pp", pedersen.transcript_bytes())
    t.append_element("bit-commitment", commitment.element)
    t.append_element("d0", proof.d0)
    t.append_element("d1", proof.d1)
    return t.challenge_scalar("or-challenge", pedersen.q)


class TestWitnessValidation:
    @pytest.mark.parametrize("value", [2, 3, 17, -1])
    def test_non_bit_witness_refused(self, pedersen64, rng, value):
        c, o = pedersen64.commit_fresh(value, rng)
        with pytest.raises(ParameterError):
            prove_bit(pedersen64, c, o, Transcript("t"), rng)

    def test_mismatched_opening_refused(self, pedersen64, rng):
        c, _ = pedersen64.commit_fresh(0, rng)
        with pytest.raises(ParameterError):
            prove_bit(pedersen64, c, Opening(0, 12345), Transcript("t"), rng)


class TestSoundness:
    def test_proof_bound_to_commitment(self, pedersen64, rng):
        c1, o1 = pedersen64.commit_fresh(0, rng)
        c2, _ = pedersen64.commit_fresh(1, rng)
        proof = prove_bit(pedersen64, c1, o1, Transcript("t"), rng)
        with pytest.raises(ProofRejected):
            verify_bit(pedersen64, c2, proof, Transcript("t"))

    def test_proof_bound_to_transcript_domain(self, pedersen64, rng):
        c, o = pedersen64.commit_fresh(1, rng)
        proof = prove_bit(pedersen64, c, o, Transcript("t1"), rng)
        with pytest.raises(ProofRejected):
            verify_bit(pedersen64, c, proof, Transcript("t2"))

    @pytest.mark.parametrize("field", ["e0", "e1", "v0", "v1"])
    def test_tampered_scalar_rejected(self, pedersen64, rng, field):
        c, o = pedersen64.commit_fresh(0, rng)
        proof = prove_bit(pedersen64, c, o, Transcript("t"), rng)
        tampered = BitProof(
            proof.d0,
            proof.d1,
            (proof.e0 + (field == "e0")) % pedersen64.q,
            (proof.e1 + (field == "e1")) % pedersen64.q,
            (proof.v0 + (field == "v0")) % pedersen64.q,
            (proof.v1 + (field == "v1")) % pedersen64.q,
        )
        with pytest.raises(ProofRejected):
            verify_bit(pedersen64, c, tampered, Transcript("t"))

    def test_swapped_announcements_rejected(self, pedersen64, rng):
        c, o = pedersen64.commit_fresh(0, rng)
        proof = prove_bit(pedersen64, c, o, Transcript("t"), rng)
        swapped = BitProof(proof.d1, proof.d0, proof.e0, proof.e1, proof.v0, proof.v1)
        with pytest.raises(ProofRejected):
            verify_bit(pedersen64, c, swapped, Transcript("t"))

    def test_simulated_proof_fails_fs_verification(self, pedersen64, rng):
        """A simulator-made proof (self-chosen challenge) does not pass the
        Fiat-Shamir verifier — the challenge will not match the hash."""
        c, _ = pedersen64.commit_fresh(5, rng)  # not even a bit
        fake = simulate_bit_transcript(pedersen64, c, 123456, rng)
        with pytest.raises(ProofRejected):
            verify_bit(pedersen64, c, fake, Transcript("t"))

    def test_batch_length_mismatch(self, pedersen64, rng):
        c, o = pedersen64.commit_fresh(0, rng)
        proof = prove_bit(pedersen64, c, o, Transcript("t"), rng)
        with pytest.raises(ProofRejected):
            verify_bits(pedersen64, [c, c], [proof], Transcript("t"))

    def test_batch_order_is_bound(self, pedersen64):
        """Reordering proofs within a batch breaks verification (shared
        transcript chains the challenges)."""
        rng = SeededRNG("ord")
        cs, os_ = pedersen64.commit_vector([0, 1], rng)
        proofs = prove_bits(pedersen64, cs, os_, Transcript("b"), rng)
        with pytest.raises(ProofRejected):
            verify_bits(pedersen64, [cs[1], cs[0]], [proofs[1], proofs[0]], Transcript("b"))


class TestZeroKnowledge:
    def test_branches_indistinguishable_structurally(self, pedersen64):
        """Proofs for x=0 and x=1 have identical shapes and marginals;
        here we check a necessary condition: all six fields are valid
        group/field elements regardless of the witness bit."""
        rng = SeededRNG("zk")
        for bit in (0, 1):
            c, o = pedersen64.commit_fresh(bit, rng)
            proof = prove_bit(pedersen64, c, o, Transcript("t"), rng)
            for scalar in (proof.e0, proof.e1, proof.v0, proof.v1):
                assert 0 <= scalar < pedersen64.q

    def test_simulator_accepts_for_given_challenge(self, pedersen64, rng):
        """Interactive HVZK: for any fixed challenge the witness-free
        simulator produces a transcript satisfying both verification
        equations and the challenge split."""
        c, _ = pedersen64.commit_fresh(1, rng)
        e = 987654321 % pedersen64.q
        proof = simulate_bit_transcript(pedersen64, c, e, rng)
        assert (proof.e0 + proof.e1) % pedersen64.q == e
        t0, t1 = branch_statements(pedersen64, c)
        assert pedersen64.h ** proof.v0 == proof.d0 * (t0 ** proof.e0)
        assert pedersen64.h ** proof.v1 == proof.d1 * (t1 ** proof.e1)

    def test_simulator_works_for_any_commitment(self, pedersen64, rng):
        """Perfect hiding: even a commitment to 42 has an accepting
        interactive transcript — which is why soundness needs the
        challenge to be unpredictable (Fiat-Shamir)."""
        c, _ = pedersen64.commit_fresh(42, rng)
        proof = simulate_bit_transcript(pedersen64, c, 7, rng)
        t0, t1 = branch_statements(pedersen64, c)
        assert pedersen64.h ** proof.v0 == proof.d0 * (t0 ** proof.e0)
        assert pedersen64.h ** proof.v1 == proof.d1 * (t1 ** proof.e1)
