"""Schnorr PoK: completeness, soundness, special soundness, HVZK."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.crypto.fiat_shamir import Transcript
from repro.crypto.sigma import schnorr_pok
from repro.errors import ParameterError, ProofRejected
from repro.utils.rng import SeededRNG

witnesses = st.integers(min_value=0, max_value=2**62)


class TestCompleteness:
    @given(w=witnesses)
    @settings(max_examples=25)
    def test_honest_proof_verifies(self, group64, w):
        g = group64.generator()
        y = g ** w
        proof = schnorr_pok.prove_dlog(group64, g, y, w, Transcript("t"), SeededRNG(f"w{w}"))
        schnorr_pok.verify_dlog(group64, g, y, proof, Transcript("t"))

    def test_alternative_base(self, group64, rng):
        h = group64.hash_to_group(b"base")
        w = group64.random_scalar(rng)
        proof = schnorr_pok.prove_dlog(group64, h, h ** w, w, Transcript("t"), rng)
        schnorr_pok.verify_dlog(group64, h, h ** w, proof, Transcript("t"))


class TestSoundness:
    def test_wrong_witness_rejected_at_prove(self, group64, rng):
        g = group64.generator()
        with pytest.raises(ParameterError):
            schnorr_pok.prove_dlog(group64, g, g ** 5, 6, Transcript("t"), rng)

    def test_proof_bound_to_statement(self, group64, rng):
        g = group64.generator()
        proof = schnorr_pok.prove_dlog(group64, g, g ** 5, 5, Transcript("t"), rng)
        with pytest.raises(ProofRejected):
            schnorr_pok.verify_dlog(group64, g, g ** 6, proof, Transcript("t"))

    def test_proof_bound_to_transcript(self, group64, rng):
        g = group64.generator()
        proof = schnorr_pok.prove_dlog(group64, g, g ** 5, 5, Transcript("t1"), rng)
        with pytest.raises(ProofRejected):
            schnorr_pok.verify_dlog(group64, g, g ** 5, proof, Transcript("t2"))

    def test_tampered_response_rejected(self, group64, rng):
        g = group64.generator()
        proof = schnorr_pok.prove_dlog(group64, g, g ** 5, 5, Transcript("t"), rng)
        bad = schnorr_pok.SchnorrProof(proof.announcement, (proof.response + 1) % group64.order)
        with pytest.raises(ProofRejected):
            schnorr_pok.verify_dlog(group64, g, g ** 5, bad, Transcript("t"))

    def test_transcript_context_binding(self, group64, rng):
        """Pre-appending different context changes the challenge."""
        g = group64.generator()
        t1 = Transcript("t")
        t1.append_int("ctx", 1)
        proof = schnorr_pok.prove_dlog(group64, g, g ** 5, 5, t1, rng)
        t2 = Transcript("t")
        t2.append_int("ctx", 2)
        with pytest.raises(ProofRejected):
            schnorr_pok.verify_dlog(group64, g, g ** 5, proof, t2)


class TestSpecialSoundness:
    @given(w=witnesses)
    @settings(max_examples=20)
    def test_extractor_recovers_witness(self, group64, w):
        """Two accepting transcripts with one announcement yield w."""
        g = group64.generator()
        y = g ** w
        a, s = schnorr_pok.announce(group64, g, SeededRNG(f"x{w}"))
        e1, e2 = 12345, 67890
        z1 = schnorr_pok.respond(group64, s, w, e1)
        z2 = schnorr_pok.respond(group64, s, w, e2)
        assert schnorr_pok.check(group64, g, y, a, e1, z1)
        assert schnorr_pok.check(group64, g, y, a, e2, z2)
        assert schnorr_pok.extract_witness(group64, e1, z1, e2, z2) == w % group64.order

    def test_equal_challenges_rejected(self, group64):
        with pytest.raises(ParameterError):
            schnorr_pok.extract_witness(group64, 5, 1, 5, 2)


class TestHVZK:
    def test_simulated_transcript_accepts(self, group64, rng):
        """The simulator produces accepting transcripts without the witness."""
        g = group64.generator()
        y = g ** 987654321  # witness unknown to the simulator call
        for e in (0, 1, 123456789):
            a, z = schnorr_pok.simulate(group64, g, y, e, rng)
            assert schnorr_pok.check(group64, g, y, a, e, z)

    def test_simulated_distribution_matches_real(self, group64):
        """Responses are uniform in both real and simulated transcripts
        (perfect HVZK): compare coarse histograms of z mod 8."""
        g = group64.generator()
        w = 424242
        y = g ** w
        real, simulated = [], []
        rng = SeededRNG("dist")
        for i in range(200):
            a, s = schnorr_pok.announce(group64, g, rng)
            e = rng.field_element(group64.order)
            real.append(schnorr_pok.respond(group64, s, w, e) % 8)
            a2, z2 = schnorr_pok.simulate(group64, g, y, e, rng)
            simulated.append(z2 % 8)
        # Both should be near-uniform over 8 buckets.
        for sample in (real, simulated):
            counts = [sample.count(b) for b in range(8)]
            assert max(counts) - min(counts) < 60
