"""ristretto255: official test vectors, group laws, encoding validation."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.crypto.ristretto import ELL, P, RistrettoGroup, sqrt_ratio_m1
from repro.errors import EncodingError, NotOnGroupError
from repro.utils.rng import SeededRNG

# Small multiples of the generator, from the ristretto255 specification
# (draft-irtf-cfrg-ristretto255-decaf448 appendix).
GENERATOR_MULTIPLES = {
    0: "0000000000000000000000000000000000000000000000000000000000000000",
    1: "e2f2ae0a6abc4e71a884a961c500515f58e30b6aa582dd8db6a65945e08d2d76",
    2: "6a493210f7499cd17fecb510ae0cea23a110e8d5b901f8acadd3095c73a3b919",
}

scalars = st.integers(min_value=0, max_value=2**130)


class TestSpecVectors:
    @pytest.mark.parametrize("k,expected", sorted(GENERATOR_MULTIPLES.items()))
    def test_generator_multiples(self, ristretto, k, expected):
        point = ristretto.generator() ** k
        assert point.to_bytes().hex() == expected

    def test_decode_spec_vectors(self, ristretto):
        for k, encoded in GENERATOR_MULTIPLES.items():
            if k == 0:
                continue
            point = ristretto.from_bytes(bytes.fromhex(encoded))
            assert point == ristretto.generator() ** k

    def test_order(self, ristretto):
        assert ristretto.order == ELL
        assert ristretto.generator() ** ELL == ristretto.identity()


class TestGroupLaws:
    @given(a=scalars, b=scalars)
    @settings(max_examples=15, deadline=None)
    def test_exponent_addition(self, ristretto, a, b):
        g = ristretto.generator()
        assert (g ** a) * (g ** b) == g ** (a + b)

    @given(a=scalars)
    @settings(max_examples=10, deadline=None)
    def test_inverse(self, ristretto, a):
        x = ristretto.generator() ** a
        assert (x * ~x) == ristretto.identity()

    @given(a=scalars)
    @settings(max_examples=10, deadline=None)
    def test_double_consistency(self, ristretto, a):
        x = ristretto.generator() ** (a % ELL)
        assert x.double() == x * x

    @given(a=scalars)
    @settings(max_examples=15, deadline=None)
    def test_encode_decode_roundtrip(self, ristretto, a):
        x = ristretto.generator() ** a
        assert ristretto.from_bytes(x.to_bytes()) == x

    def test_coset_equality(self, ristretto):
        """Internally different representations of equal elements compare equal."""
        g = ristretto.generator()
        a = (g ** 7) * (g ** 5)
        b = g ** 12
        assert a == b
        assert hash(a) == hash(b)
        assert a.to_bytes() == b.to_bytes()


class TestEncodingValidation:
    def test_wrong_length(self, ristretto):
        with pytest.raises(EncodingError):
            ristretto.from_bytes(b"\x00" * 31)

    def test_non_canonical_rejected(self, ristretto):
        # s >= p is non-canonical.
        bad = (P + 1).to_bytes(32, "little")
        with pytest.raises(NotOnGroupError):
            ristretto.from_bytes(bad)

    def test_negative_s_rejected(self, ristretto):
        # s odd ("negative") encodings are invalid by construction.
        bad = (1).to_bytes(32, "little")
        with pytest.raises(NotOnGroupError):
            ristretto.from_bytes(bad)

    def test_random_strings_mostly_rejected(self, ristretto):
        rng = SeededRNG("junk")
        rejected = 0
        for _ in range(20):
            data = bytearray(rng.random_bytes(32))
            data[31] &= 0x7F  # keep below 2^255 to hit the curve checks
            data[0] &= 0xFE  # even (sign ok) — still must be on-curve
            try:
                ristretto.from_bytes(bytes(data))
            except (NotOnGroupError, EncodingError):
                rejected += 1
        assert rejected >= 10  # at most ~1/2 of strings decode


class TestHashToGroup:
    def test_deterministic(self, ristretto):
        assert ristretto.hash_to_group(b"x") == ristretto.hash_to_group(b"x")
        assert ristretto.hash_to_group(b"x") != ristretto.hash_to_group(b"y")

    def test_output_valid(self, ristretto):
        h = ristretto.hash_to_group(b"pedersen")
        assert ristretto.from_bytes(h.to_bytes()) == h
        assert h ** ELL == ristretto.identity()

    def test_from_uniform_bytes_requires_64(self, ristretto):
        with pytest.raises(EncodingError):
            ristretto.from_uniform_bytes(b"\x00" * 32)

    def test_from_uniform_bytes_valid(self, ristretto):
        rng = SeededRNG("u")
        for _ in range(5):
            point = ristretto.from_uniform_bytes(rng.random_bytes(64))
            assert ristretto.from_bytes(point.to_bytes()) == point


class TestSqrtRatio:
    def test_square_case(self):
        was_square, r = sqrt_ratio_m1(4, 1)
        assert was_square
        assert (r * r) % P == 4

    def test_ratio_case(self):
        u, v = 9, 4
        was_square, r = sqrt_ratio_m1(u, v)
        assert was_square
        assert (v * r * r) % P == u

    def test_zero(self):
        was_square, r = sqrt_ratio_m1(0, 5)
        assert was_square and r == 0

    @given(st.integers(min_value=1, max_value=2**64))
    @settings(max_examples=30)
    def test_consistency(self, u):
        was_square, r = sqrt_ratio_m1(u, 1)
        if was_square:
            assert (r * r) % P == u % P
        else:
            from repro.crypto.ristretto import SQRT_M1

            assert (r * r) % P == (SQRT_M1 * u) % P
        assert r % 2 == 0  # non-negative convention
