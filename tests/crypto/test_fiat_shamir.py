"""Transcript: domain separation, order sensitivity, challenge extraction."""

import pytest

from repro.crypto.fiat_shamir import Transcript
from repro.errors import ParameterError


def challenge(t: Transcript) -> bytes:
    return t.challenge_bytes("c", 32)


class TestDomainSeparation:
    def test_same_inputs_same_challenge(self):
        a = Transcript("d")
        b = Transcript("d")
        a.append_int("x", 5)
        b.append_int("x", 5)
        assert challenge(a) == challenge(b)

    def test_different_domains_differ(self):
        a = Transcript("d1")
        b = Transcript("d2")
        assert challenge(a) != challenge(b)

    def test_empty_domain_rejected(self):
        with pytest.raises(ParameterError):
            Transcript("")

    def test_label_matters(self):
        a = Transcript("d")
        b = Transcript("d")
        a.append_int("x", 5)
        b.append_int("y", 5)
        assert challenge(a) != challenge(b)

    def test_message_split_unambiguous(self):
        """append("ab") then append("c") != append("a") then append("bc")."""
        a = Transcript("d")
        a.append_bytes("m", b"ab")
        a.append_bytes("m", b"c")
        b = Transcript("d")
        b.append_bytes("m", b"a")
        b.append_bytes("m", b"bc")
        assert challenge(a) != challenge(b)

    def test_order_matters(self):
        a = Transcript("d")
        a.append_int("x", 1)
        a.append_int("y", 2)
        b = Transcript("d")
        b.append_int("y", 2)
        b.append_int("x", 1)
        assert challenge(a) != challenge(b)


class TestChallenges:
    def test_extraction_chains(self):
        """A second challenge depends on the first extraction."""
        a = Transcript("d")
        c1 = a.challenge_bytes("one", 16)
        c2 = a.challenge_bytes("two", 16)
        b = Transcript("d")
        d2_first = b.challenge_bytes("two", 16)
        assert c1 != c2
        assert c2 != d2_first

    def test_challenge_scalar_range(self):
        t = Transcript("d")
        for i in range(20):
            q = 2**61 - 1
            s = t.challenge_scalar(f"s{i}", q)
            assert 0 <= s < q

    def test_challenge_scalar_small_modulus(self):
        t = Transcript("d")
        assert t.challenge_scalar("s", 2) in (0, 1)
        with pytest.raises(ParameterError):
            t.challenge_scalar("s", 1)

    def test_long_extraction(self):
        t = Transcript("d")
        data = t.challenge_bytes("long", 1000)
        assert len(data) == 1000

    def test_element_append(self, group64):
        a = Transcript("d")
        b = Transcript("d")
        a.append_element("g", group64.generator())
        b.append_element("g", group64.generator() ** 2)
        assert challenge(a) != challenge(b)

    def test_elements_append(self, group64):
        t = Transcript("d")
        t.append_elements("gs", [group64.generator(), group64.generator() ** 2])
        assert len(challenge(t)) == 32


class TestFork:
    def test_forks_differ_by_label(self):
        t = Transcript("d")
        t.append_int("x", 1)
        assert challenge(t.fork("a")) != challenge(t.fork("b"))

    def test_fork_does_not_mutate_parent(self):
        a = Transcript("d")
        b = Transcript("d")
        a.fork("child")
        assert challenge(a) == challenge(b)

    def test_fork_inherits_state(self):
        a = Transcript("d")
        a.append_int("x", 1)
        b = Transcript("d")
        b.append_int("x", 2)
        assert challenge(a.fork("f")) != challenge(b.fork("f"))
