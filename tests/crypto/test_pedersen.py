"""Pedersen commitments: homomorphism, hiding/binding behaviour, openings."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.crypto.pedersen import Commitment, Opening, PedersenParams
from repro.errors import CommitmentOpeningError, ParameterError
from repro.utils.rng import SeededRNG

values = st.integers(min_value=0, max_value=2**62)


class TestCommitVerify:
    @given(x=values, r=values)
    @settings(max_examples=30)
    def test_opens_to_its_own_opening(self, pedersen64, x, r):
        c = pedersen64.commit(x, r)
        pedersen64.verify_opening(c, Opening(x % pedersen64.q, r % pedersen64.q))

    @given(x=values)
    @settings(max_examples=25)
    def test_commit_fresh(self, pedersen64, x):
        c, o = pedersen64.commit_fresh(x, SeededRNG(f"f{x}"))
        assert o.value == x % pedersen64.q
        assert pedersen64.opens_to(c, o)

    def test_wrong_value_rejected(self, pedersen64, rng):
        c, o = pedersen64.commit_fresh(7, rng)
        with pytest.raises(CommitmentOpeningError):
            pedersen64.verify_opening(c, Opening(8, o.randomness))

    def test_wrong_randomness_rejected(self, pedersen64, rng):
        c, o = pedersen64.commit_fresh(7, rng)
        assert not pedersen64.opens_to(c, Opening(7, (o.randomness + 1) % pedersen64.q))


class TestHomomorphism:
    @given(x1=values, r1=values, x2=values, r2=values)
    @settings(max_examples=30)
    def test_product_commits_to_sum(self, pedersen64, x1, r1, x2, r2):
        """Definition 3, equation (2)."""
        q = pedersen64.q
        lhs = pedersen64.commit(x1, r1) * pedersen64.commit(x2, r2)
        rhs = pedersen64.commit((x1 + x2) % q, (r1 + r2) % q)
        assert lhs.element == rhs.element

    @given(x=values, r=values, e=st.integers(min_value=0, max_value=1000))
    @settings(max_examples=25)
    def test_power_commits_to_scalar_multiple(self, pedersen64, x, r, e):
        q = pedersen64.q
        assert (pedersen64.commit(x, r) ** e).element == pedersen64.commit(
            (x * e) % q, (r * e) % q
        ).element

    def test_add_openings(self, pedersen64, rng):
        cs, os_ = pedersen64.commit_vector([3, 4, 5], rng)
        combined = pedersen64.add_openings(os_)
        product = pedersen64.product(cs)
        assert pedersen64.opens_to(product, combined)
        assert combined.value == 12

    def test_one_minus(self, pedersen64, rng):
        """one_minus(Com(x, r)) == Com(1-x, -r) — the Line 12 update."""
        q = pedersen64.q
        for x in (0, 1):
            c, o = pedersen64.commit_fresh(x, rng)
            flipped = pedersen64.one_minus(c)
            assert pedersen64.opens_to(
                flipped, Opening((1 - x) % q, (-o.randomness) % q)
            )

    def test_one_minus_involution(self, pedersen64, rng):
        c, _ = pedersen64.commit_fresh(1, rng)
        assert pedersen64.one_minus(pedersen64.one_minus(c)).element == c.element


class TestHiding:
    def test_same_value_different_commitments(self, pedersen64):
        """Fresh randomness makes commitments to equal values distinct."""
        rng = SeededRNG("h")
        seen = {pedersen64.commit_fresh(1, rng)[0].element.to_bytes() for _ in range(32)}
        assert len(seen) == 32

    def test_every_element_opens_to_any_value(self, pedersen64):
        """Perfect hiding, constructively: any commitment can be explained
        as any value given the right (unknown) randomness — demonstrated
        via the trapdoor on the toy group in tests/analysis."""
        c0 = pedersen64.commit(0, 5)
        c1 = pedersen64.commit(1, 5)
        assert c0.element != c1.element  # but both uniform over the group


class TestParams:
    def test_h_differs_from_g(self, pedersen64):
        assert pedersen64.h != pedersen64.g
        assert not pedersen64.h.is_identity()

    def test_transcript_bytes_stable(self, pedersen64):
        assert pedersen64.transcript_bytes() == pedersen64.transcript_bytes()

    def test_different_h_labels(self, group64):
        a = PedersenParams(group64, h_label=b"a")
        b = PedersenParams(group64, h_label=b"b")
        assert a.h != b.h

    def test_commitment_to_constant(self, pedersen64):
        assert pedersen64.commitment_to_constant(5).element == pedersen64.commit(5, 0).element

    def test_ristretto_backend(self, ristretto):
        """The commitment layer is backend-agnostic."""
        pp = PedersenParams(ristretto)
        c, o = pp.commit_fresh(42, SeededRNG("r"))
        assert pp.opens_to(c, o)
        assert (pp.commit(1, 2) * pp.commit(3, 4)).element == pp.commit(4, 6).element

    def test_opening_addition_guard(self):
        with pytest.raises(TypeError):
            Opening(1, 2) + Opening(3, 4)


class TestCommitMany:
    def test_matches_commit(self, pedersen64, rng):
        values = [rng.field_element(pedersen64.q) for _ in range(9)] + [0, 1]
        rands = [rng.field_element(pedersen64.q) for _ in range(11)]
        fused = pedersen64.commit_many(values, rands)
        for c, x, r in zip(fused, values, rands):
            assert c.element == pedersen64.commit(x, r).element

    def test_empty(self, pedersen64):
        assert pedersen64.commit_many([], []) == []

    def test_length_mismatch(self, pedersen64):
        with pytest.raises(ParameterError):
            pedersen64.commit_many([1, 2], [3])

    def test_unreduced_inputs(self, pedersen64):
        q = pedersen64.q
        (c,) = pedersen64.commit_many([q + 5], [-3])
        assert c.element == pedersen64.commit(5, q - 3).element

    def test_commit_vector_uses_fused_path(self, pedersen64):
        cs, os_ = pedersen64.commit_vector([0, 1, 1, 0], SeededRNG("cv"))
        for c, o in zip(cs, os_):
            assert pedersen64.opens_to(c, o)

    def test_ristretto_backend(self, ristretto):
        pp = PedersenParams(ristretto)
        fused = pp.commit_many([7, 8], [9, 10])
        assert fused[0].element == pp.commit(7, 9).element
        assert fused[1].element == pp.commit(8, 10).element


class TestConstantCache:
    def test_zero_and_one_cached(self, pedersen64):
        assert pedersen64.commitment_to_constant(0) is pedersen64.commitment_to_constant(0)
        assert pedersen64.commitment_to_constant(1) is pedersen64.commitment_to_constant(1)

    def test_cached_values_correct(self, pedersen64):
        assert pedersen64.commitment_to_constant(0).element == pedersen64.commit(0, 0).element
        assert pedersen64.commitment_to_constant(1).element == pedersen64.commit(1, 0).element
        assert pedersen64.commitment_to_constant(pedersen64.q).element == pedersen64.commit(0, 0).element
