"""Fixed-base comb tables: cross-backend equivalence with plain ``**``.

The Pedersen generators g/h are exponentiated millions of times per run;
``PedersenParams`` caches comb tables for both and every hot path
(commit, Σ-OR verify, batch-verify generator folds) goes through them.
These tests pin the tables to the semantics of naive exponentiation on
every group backend.
"""

import pytest

from repro.crypto.multiexp import FixedBaseTable, dual_power, kernel_for
from repro.crypto.pedersen import PedersenParams
from repro.errors import ParameterError
from repro.utils.rng import SeededRNG


def _backends():
    from repro.crypto.p256 import P256Group
    from repro.crypto.ristretto import RistrettoGroup
    from repro.crypto.schnorr_group import SchnorrGroup

    return [
        SchnorrGroup.named("p64-sim"),
        SchnorrGroup.named("p128-sim"),
        RistrettoGroup.instance(),
        P256Group.instance(),
    ]


@pytest.fixture(scope="module", params=range(4), ids=["p64", "p128", "ristretto", "p256"])
def pedersen(request):
    return PedersenParams(_backends()[request.param])


def _exponents(pedersen, n=8):
    rng = SeededRNG(f"fixed-base-{pedersen.group.name}")
    edge = [0, 1, 2, pedersen.q - 1, pedersen.q // 2]
    return edge + [rng.field_element(pedersen.q) for _ in range(n)]


class TestFixedBaseTables:
    def test_pow_g_matches_naive(self, pedersen):
        for e in _exponents(pedersen):
            assert pedersen.pow_g(e) == pedersen.g ** e

    def test_pow_h_matches_naive(self, pedersen):
        for e in _exponents(pedersen):
            assert pedersen.pow_h(e) == pedersen.h ** e

    def test_dual_power_matches_naive(self, pedersen):
        exps = _exponents(pedersen)
        for a, b in zip(exps, reversed(exps)):
            expected = (pedersen.g ** a) * (pedersen.h ** b)
            assert dual_power(pedersen._g_table, a, pedersen._h_table, b) == expected

    def test_commit_is_fused_dual_power(self, pedersen):
        rng = SeededRNG("commit")
        for _ in range(5):
            x = rng.field_element(pedersen.q)
            r = rng.field_element(pedersen.q)
            assert pedersen.commit(x, r).element == (pedersen.g ** x) * (pedersen.h ** r)

    def test_negative_exponents_reduced(self, pedersen):
        assert pedersen.pow_g(-1) == pedersen.g ** (pedersen.q - 1)
        assert pedersen.commit(-2, -3).element == pedersen.commit(
            pedersen.q - 2, pedersen.q - 3
        ).element

    def test_power_raw_roundtrip(self, pedersen):
        kernel = kernel_for(pedersen.group)
        table = pedersen._g_table
        for e in _exponents(pedersen, n=3):
            assert kernel.from_raw(table.power_raw(kernel, e)) == pedersen.g ** e


class TestDualPowerValidation:
    def test_mismatched_groups_rejected(self):
        from repro.crypto.schnorr_group import SchnorrGroup

        a = PedersenParams(SchnorrGroup.named("p64-sim"))
        b = PedersenParams(SchnorrGroup.named("p128-sim"))
        with pytest.raises(ParameterError):
            dual_power(a._g_table, 1, b._h_table, 1)

    def test_mismatched_geometry_rejected(self):
        from repro.crypto.schnorr_group import SchnorrGroup

        group = SchnorrGroup.named("p64-sim")
        wide = FixedBaseTable(group.generator(), window=8)
        narrow = FixedBaseTable(group.generator(), window=4)
        with pytest.raises(ParameterError):
            dual_power(wide, 1, narrow, 1)

    def test_tables_cached_per_params(self):
        """One comb table pair per PedersenParams — the cache the hot
        paths rely on (rebuilding per call would erase the win)."""
        from repro.crypto.schnorr_group import SchnorrGroup

        p = PedersenParams(SchnorrGroup.named("p64-sim"))
        assert p._g_table is p._g_table
        assert p._g_table.base == p.g
        assert p._h_table.base == p.h
