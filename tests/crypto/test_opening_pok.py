"""Opening PoK: completeness, binding-by-extraction, HVZK."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.crypto.fiat_shamir import Transcript
from repro.crypto.pedersen import Opening
from repro.crypto.sigma.opening_pok import (
    OpeningProof,
    extract_opening,
    prove_opening,
    simulate_opening,
    verify_opening,
)
from repro.errors import ParameterError, ProofRejected
from repro.utils.rng import SeededRNG

values = st.integers(min_value=0, max_value=2**62)


class TestCompleteness:
    @given(x=values)
    @settings(max_examples=20)
    def test_roundtrip(self, pedersen64, x):
        rng = SeededRNG(f"o{x}")
        c, o = pedersen64.commit_fresh(x, rng)
        proof = prove_opening(pedersen64, c, o, Transcript("t"), rng)
        verify_opening(pedersen64, c, proof, Transcript("t"))


class TestSoundness:
    def test_mismatched_witness_refused(self, pedersen64, rng):
        c, o = pedersen64.commit_fresh(5, rng)
        with pytest.raises(ParameterError):
            prove_opening(pedersen64, c, Opening(6, o.randomness), Transcript("t"), rng)

    def test_wrong_commitment_rejected(self, pedersen64, rng):
        c1, o1 = pedersen64.commit_fresh(5, rng)
        c2, _ = pedersen64.commit_fresh(6, rng)
        proof = prove_opening(pedersen64, c1, o1, Transcript("t"), rng)
        with pytest.raises(ProofRejected):
            verify_opening(pedersen64, c2, proof, Transcript("t"))

    def test_tampered_responses_rejected(self, pedersen64, rng):
        c, o = pedersen64.commit_fresh(5, rng)
        proof = prove_opening(pedersen64, c, o, Transcript("t"), rng)
        bad = OpeningProof(
            proof.announcement,
            (proof.response_value + 1) % pedersen64.q,
            proof.response_randomness,
        )
        with pytest.raises(ProofRejected):
            verify_opening(pedersen64, c, bad, Transcript("t"))


class TestExtraction:
    def test_extractor_recovers_opening(self, pedersen64):
        """Special soundness: rewinding to two challenges yields (x, r)."""
        rng = SeededRNG("ex")
        q = pedersen64.q
        x, r = 77, 99
        s = rng.field_element(q)
        t = rng.field_element(q)
        e1, e2 = 1111, 2222
        resp1 = ((s + e1 * x) % q, (t + e1 * r) % q)
        resp2 = ((s + e2 * x) % q, (t + e2 * r) % q)
        opening = extract_opening(pedersen64, e1, resp1, e2, resp2)
        assert opening == Opening(x, r)

    def test_equal_challenges_rejected(self, pedersen64):
        with pytest.raises(ParameterError):
            extract_opening(pedersen64, 5, (1, 2), 5, (3, 4))


class TestHVZK:
    def test_simulator_accepts(self, pedersen64, rng):
        c, _ = pedersen64.commit_fresh(123, rng)
        e = 4242 % pedersen64.q
        announcement, z_x, z_r = simulate_opening(pedersen64, c, e, rng)
        lhs = (pedersen64.g ** z_x) * (pedersen64.h ** z_r)
        rhs = announcement * (c.element ** e)
        assert lhs == rhs
