"""Multi-exponentiation engine: all tiers agree with naive evaluation.

Cross-backend property tests assert naive == straus == pippenger on
random and edge inputs (empty batches, zero and negative exponents,
duplicate bases, batch sizes straddling every tier boundary) for the
Schnorr, ristretto255, and P-256 kernels plus the generic fallback.
"""

import pytest
from hypothesis import given, settings, strategies as st

from repro.crypto.multiexp import (
    FixedBaseTable,
    GenericKernel,
    kernel_for,
    multi_exponentiation,
    select_algorithm,
)
from repro.errors import ParameterError
from repro.utils.rng import SeededRNG

scalars = st.integers(min_value=0, max_value=2**70)
signed_scalars = st.integers(min_value=-(2**70), max_value=2**70)

# "pippenger" auto-picks a digit decomposition; the explicit -signed /
# -unsigned variants pin each bucket flavor, so every agreement test
# below also proves the signed-digit (2^c-ary NAF) path correct on
# random and edge inputs across all kernels.
ALGORITHMS = (
    "naive",
    "straus",
    "pippenger",
    "pippenger-signed",
    "pippenger-unsigned",
)

# Batch sizes at and around every tier boundary of the 128-bit Schnorr
# profile (naive ≤ ~4, straus ≤ ~12, pippenger beyond) plus a large one.
TIER_SIZES = (1, 2, 3, 4, 5, 8, 12, 13, 16, 33, 100)


def naive_product(group, bases, exps):
    acc = group.identity()
    for base, e in zip(bases, exps):
        acc = acc * base ** e
    return acc


def random_instance(group, n, seed):
    rng = SeededRNG(seed)
    bases = [group.random_element(rng) for _ in range(n)]
    exps = [rng.randrange(-group.order, group.order) for _ in range(n)]
    if n >= 3:
        bases[1] = bases[0]  # duplicate base
        exps[2] = 0  # zero exponent
    return bases, exps


class TestMultiExponentiation:
    @given(st.lists(signed_scalars, min_size=0, max_size=8))
    @settings(max_examples=30)
    def test_matches_naive(self, group64, exps):
        rng = SeededRNG("me")
        bases = [group64.random_element(rng) for _ in exps]
        expected = naive_product(group64, bases, exps)
        assert multi_exponentiation(group64, bases, exps) == expected

    @pytest.mark.parametrize("algorithm", ALGORITHMS)
    @pytest.mark.parametrize("n", TIER_SIZES)
    def test_tiers_agree_schnorr(self, group64, n, algorithm):
        bases, exps = random_instance(group64, n, f"t{n}")
        expected = naive_product(group64, bases, exps)
        got = multi_exponentiation(group64, bases, exps, algorithm=algorithm)
        assert got == expected

    @pytest.mark.parametrize("algorithm", ALGORITHMS)
    @pytest.mark.parametrize("n", (1, 3, 13, 40))
    def test_tiers_agree_ristretto(self, ristretto, n, algorithm):
        bases, exps = random_instance(ristretto, n, f"r{n}")
        expected = naive_product(ristretto, bases, exps)
        assert multi_exponentiation(ristretto, bases, exps, algorithm=algorithm) == expected

    @pytest.mark.parametrize("algorithm", ALGORITHMS)
    @pytest.mark.parametrize("n", (1, 3, 13, 40))
    def test_tiers_agree_p256(self, n, algorithm):
        from repro.crypto.p256 import P256Group

        group = P256Group.instance()
        bases, exps = random_instance(group, n, f"p{n}")
        expected = naive_product(group, bases, exps)
        assert multi_exponentiation(group, bases, exps, algorithm=algorithm) == expected

    @pytest.mark.parametrize("algorithm", ALGORITHMS)
    def test_tiers_agree_generic_kernel(self, group64, algorithm, monkeypatch):
        # Knock out the Schnorr kernel so the GroupElement fallback runs.
        monkeypatch.setattr(type(group64), "multiexp_kernel", lambda self: None)
        assert isinstance(kernel_for(group64), GenericKernel)
        bases, exps = random_instance(group64, 9, "gen")
        expected = naive_product(group64, bases, exps)
        assert multi_exponentiation(group64, bases, exps, algorithm=algorithm) == expected

    @pytest.mark.parametrize("algorithm", ALGORITHMS)
    def test_empty(self, group64, algorithm):
        assert multi_exponentiation(group64, [], [], algorithm=algorithm) == group64.identity()

    def test_single(self, group64):
        g = group64.generator()
        assert multi_exponentiation(group64, [g], [12345]) == g ** 12345

    @pytest.mark.parametrize("algorithm", ALGORITHMS)
    def test_all_zero_exponents(self, group64, algorithm):
        g = group64.generator()
        got = multi_exponentiation(group64, [g, g], [0, 0], algorithm=algorithm)
        assert got == group64.identity()

    @pytest.mark.parametrize("algorithm", ALGORITHMS)
    def test_negative_exponents(self, group64, algorithm):
        g = group64.generator()
        got = multi_exponentiation(group64, [g, g ** 3], [-1, -5], algorithm=algorithm)
        assert got == (g ** (group64.order - 1)) * (g ** (3 * (group64.order - 5)))

    @pytest.mark.parametrize("algorithm", ALGORITHMS)
    def test_duplicate_bases(self, group64, algorithm):
        g = group64.generator()
        got = multi_exponentiation(group64, [g, g, g], [5, 7, 11], algorithm=algorithm)
        assert got == g ** 23

    def test_mismatch(self, group64):
        with pytest.raises(ParameterError):
            multi_exponentiation(group64, [group64.generator()], [1, 2])

    def test_unknown_algorithm(self, group64):
        with pytest.raises(ParameterError):
            multi_exponentiation(group64, [group64.generator()], [3], algorithm="montgomery")
        with pytest.raises(ParameterError):  # validated even for degenerate batches
            multi_exponentiation(group64, [], [], algorithm="montgomery")

    def test_on_ristretto(self, ristretto):
        g = ristretto.generator()
        bases = [g ** 3, g ** 5]
        assert multi_exponentiation(ristretto, bases, [2, 4]) == g ** 26


class TestSelection:
    def test_trivial_cases_are_naive(self):
        assert select_algorithm(0, 128) == "naive"
        assert select_algorithm(1, 128) == "naive"
        assert select_algorithm(100, 1) == "naive"

    def test_large_batches_use_pippenger(self):
        for bits in (127, 252, 2047):
            assert select_algorithm(4096, bits) == "pippenger"

    def test_monotone_tiers_128(self):
        # Order along n must be naive* straus* pippenger* (no interleaving).
        picks = [select_algorithm(n, 127) for n in range(1, 300)]
        ranks = [("naive", "straus", "pippenger").index(p) for p in picks]
        assert ranks == sorted(ranks)

    def test_wide_groups_prefer_shared_chain_early(self):
        # modp-2048 profile: one C pow is ~2047 muls, so Straus' shared
        # square chain wins from n = 2 already.
        assert select_algorithm(2, 2047, native_pow=True, op_overhead=0.05) == "straus"

    def test_curve_backends_skip_naive_early(self):
        assert select_algorithm(2, 252, native_pow=False, op_overhead=0.1) == "straus"

    def test_signed_buckets_chosen_only_where_negation_is_cheap(self):
        from repro.crypto.multiexp import _pippenger_variant

        # Curve profile: negation is a coordinate flip -> signed digits.
        assert _pippenger_variant(4096, 252, 0.05)[0] == "pippenger-signed"
        # Schnorr integer profile: negation is ~3 muls via batch
        # inversion, which eats the saved windows -> unsigned holds.
        assert _pippenger_variant(4096, 127, 3.2)[0] == "pippenger-unsigned"

    def test_signed_cost_model_counts_the_negation_pass(self):
        from repro.crypto.multiexp import _pippenger_cost

        free = _pippenger_cost(1024, 252, 9, signed=True, neg_muls=0.0)
        paid = _pippenger_cost(1024, 252, 9, signed=True, neg_muls=3.2)
        assert paid - free == pytest.approx(3.2 * 1024)


class TestCalibration:
    """The measured-BENCH auto-tuner: trusted when present, silent when not."""

    def _with_bench(self, monkeypatch, tmp_path, payload):
        import json

        from repro.crypto import multiexp

        (tmp_path / "BENCH_multiexp.json").write_text(json.dumps(payload))
        monkeypatch.setenv("REPRO_BENCH_DIR", str(tmp_path))
        monkeypatch.delenv("REPRO_MULTIEXP_CALIBRATION", raising=False)
        multiexp._reset_calibration()
        return multiexp

    def test_measured_crossovers_override_the_cost_model(self, monkeypatch, tmp_path):
        rows = [
            {"group": "x-sim", "n": 4, "bits": 127, "naive_ms": 1.0, "straus_ms": 2.0, "pippenger_ms": 3.0},
            {"group": "x-sim", "n": 16, "bits": 127, "naive_ms": 3.0, "straus_ms": 1.0, "pippenger_ms": 2.0},
            {"group": "x-sim", "n": 64, "bits": 127, "naive_ms": 9.0, "straus_ms": 3.0, "pippenger_ms": 1.0},
        ]
        multiexp = self._with_bench(monkeypatch, tmp_path, {"rows": rows})
        try:
            assert multiexp.select_algorithm(4, 127, group_name="x-sim") == "naive"
            assert multiexp.select_algorithm(16, 127, group_name="x-sim") == "straus"
            assert multiexp.select_algorithm(64, 127, group_name="x-sim") == "pippenger"
            # A very different exponent width must NOT trust the table.
            assert (
                multiexp.select_algorithm(4, 2047, group_name="x-sim")
                == multiexp.select_algorithm(4, 2047)
            )
        finally:
            multiexp._reset_calibration()

    def test_no_extrapolation_past_the_largest_measured_n(self, monkeypatch, tmp_path):
        # The top measured row still has straus winning; past it the rows
        # say nothing about a crossover, so the cost model must decide —
        # the tuner interpolates, never extrapolates.
        rows = [
            {"group": "x-wide", "n": 8, "bits": 2047, "naive_ms": 9.0, "straus_ms": 1.0, "pippenger_ms": 2.0},
            {"group": "x-wide", "n": 32, "bits": 2047, "naive_ms": 30.0, "straus_ms": 3.0, "pippenger_ms": 5.0},
        ]
        multiexp = self._with_bench(monkeypatch, tmp_path, {"rows": rows})
        try:
            assert multiexp.select_algorithm(32, 2047, group_name="x-wide") == "straus"
            assert (
                multiexp.select_algorithm(
                    64, 2047, native_pow=True, op_overhead=0.05, group_name="x-wide"
                )
                == multiexp.select_algorithm(64, 2047, native_pow=True, op_overhead=0.05)
            )
        finally:
            multiexp._reset_calibration()

    def test_measured_straus_window_overrides_the_table(self, monkeypatch, tmp_path):
        rows = [
            {"group": "x-sim", "kind": "straus-window", "n": 16, "bits": 127, "window": 3, "ms": 5.0},
            {"group": "x-sim", "kind": "straus-window", "n": 16, "bits": 127, "window": 6, "ms": 1.0},
        ]
        multiexp = self._with_bench(monkeypatch, tmp_path, {"rows": rows})
        try:
            assert multiexp._straus_window(127, "x-sim") == 6
            # Far-off widths and unknown groups fall back to the table.
            assert multiexp._straus_window(2047, "x-sim") == multiexp._straus_window(2047)
            assert multiexp._straus_window(127, "unknown") == multiexp._straus_window(127)
        finally:
            multiexp._reset_calibration()

    def test_absent_or_garbage_file_falls_back_silently(self, monkeypatch, tmp_path):
        from repro.crypto import multiexp

        # No file anywhere (the checked-in repo-root copy is part of the
        # default search path, so stub the resolver itself).
        monkeypatch.setattr(multiexp, "_calibration_path", lambda: None)
        multiexp._reset_calibration()
        try:
            assert multiexp._calibration() == {}
            garbage = tmp_path / "BENCH_multiexp.json"
            garbage.write_text("{not json")
            monkeypatch.setattr(multiexp, "_calibration_path", lambda: garbage)
            multiexp._reset_calibration()
            assert multiexp._calibration() == {}
            assert multiexp.select_algorithm(4096, 127, group_name="x-sim") == "pippenger"
        finally:
            multiexp._reset_calibration()

    def test_opt_out_env_var(self, monkeypatch, tmp_path):
        rows = [
            {"group": "x-sim", "n": 4096, "bits": 127, "naive_ms": 1.0, "straus_ms": 2.0, "pippenger_ms": 3.0},
        ]
        multiexp = self._with_bench(monkeypatch, tmp_path, {"rows": rows})
        try:
            assert multiexp.select_algorithm(4096, 127, group_name="x-sim") == "naive"
            monkeypatch.setenv("REPRO_MULTIEXP_CALIBRATION", "0")
            multiexp._reset_calibration()
            assert multiexp.select_algorithm(4096, 127, group_name="x-sim") == "pippenger"
        finally:
            multiexp._reset_calibration()

    def test_variant_rows_alone_do_not_claim_crossovers(self, monkeypatch, tmp_path):
        # A group measured only by the signed-vs-unsigned comparison (no
        # tier timings) must keep cost-model tier selection.
        rows = [
            {"group": "x-sim", "kind": "pippenger-variants", "n": 1024, "bits": 127,
             "unsigned_ms": 5.0, "signed_ms": 6.0, "signed_speedup": 0.83},
        ]
        multiexp = self._with_bench(monkeypatch, tmp_path, {"rows": rows})
        try:
            assert (
                multiexp.select_algorithm(2, 127, group_name="x-sim")
                == multiexp.select_algorithm(2, 127)
            )
        finally:
            multiexp._reset_calibration()


class TestKernels:
    def test_raw_roundtrip(self, group64, ristretto):
        from repro.crypto.p256 import P256Group

        for group in (group64, ristretto, P256Group.instance()):
            kernel = kernel_for(group)
            element = group.random_element(SeededRNG(f"rt-{group.name}"))
            assert kernel.from_raw(kernel.to_raw(element)) == element
            assert kernel.from_raw(kernel.identity_raw) == group.identity()

    def test_mul_sqr_neg_consistent(self, group64, ristretto):
        from repro.crypto.p256 import P256Group

        for group in (group64, ristretto, P256Group.instance()):
            kernel = kernel_for(group)
            rng = SeededRNG(f"k-{group.name}")
            a, b = group.random_element(rng), group.random_element(rng)
            ra, rb = kernel.to_raw(a), kernel.to_raw(b)
            assert kernel.from_raw(kernel.mul(ra, rb)) == a * b
            assert kernel.from_raw(kernel.sqr(ra)) == a * a
            (neg,) = kernel.neg_many([ra])
            assert kernel.from_raw(neg) == ~a

    def test_p256_normalize_many(self):
        from repro.crypto.p256 import P256Group

        group = P256Group.instance()
        rng = SeededRNG("norm")
        points = [group.random_element(rng) ** 7 for _ in range(5)] + [group.identity()]
        normalized = group.normalize_many(points)
        assert [p.to_bytes() for p in normalized] == [p.to_bytes() for p in points]
        assert all(p.Z == 1 for p in normalized if not p.is_infinity())


class TestFixedBaseTable:
    @given(a=scalars)
    @settings(max_examples=30)
    def test_matches_pow(self, group64, a):
        table = _table64(group64)
        assert table.power(a) == group64.generator() ** a

    def test_zero(self, group64):
        assert _table64(group64).power(0) == group64.identity()

    def test_order_reduction(self, group64):
        table = _table64(group64)
        assert table.power(group64.order + 5) == group64.generator() ** 5

    def test_base_property(self, group64):
        assert _table64(group64).base == group64.generator()

    def test_invalid_window(self, group64):
        with pytest.raises(ParameterError):
            FixedBaseTable(group64.generator(), window=0)
        with pytest.raises(ParameterError):
            FixedBaseTable(group64.generator(), window=99)

    def test_raw_tables_cached(self, group64):
        table = _table64(group64)
        kernel = kernel_for(group64)
        rows = table.raw_tables(kernel)
        assert rows is table.raw_tables(kernel)
        assert kernel.from_raw(rows[0][1]) == table.base


_cached = {}


def _table64(group64):
    if "t" not in _cached:
        _cached["t"] = FixedBaseTable(group64.generator(), window=5)
    return _cached["t"]
