"""Multi-exponentiation and fixed-base tables match naive evaluation."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.crypto.multiexp import FixedBaseTable, multi_exponentiation
from repro.errors import ParameterError
from repro.utils.rng import SeededRNG

scalars = st.integers(min_value=0, max_value=2**70)


class TestMultiExponentiation:
    @given(st.lists(scalars, min_size=0, max_size=8))
    @settings(max_examples=30)
    def test_matches_naive(self, group64, exps):
        rng = SeededRNG("me")
        bases = [group64.random_element(rng) for _ in exps]
        expected = group64.identity()
        for base, e in zip(bases, exps):
            expected = expected * base ** e
        assert multi_exponentiation(group64, bases, exps) == expected

    def test_empty(self, group64):
        assert multi_exponentiation(group64, [], []) == group64.identity()

    def test_single(self, group64):
        g = group64.generator()
        assert multi_exponentiation(group64, [g], [12345]) == g ** 12345

    def test_all_zero_exponents(self, group64):
        g = group64.generator()
        assert multi_exponentiation(group64, [g, g], [0, 0]) == group64.identity()

    def test_mismatch(self, group64):
        with pytest.raises(ParameterError):
            multi_exponentiation(group64, [group64.generator()], [1, 2])

    def test_on_ristretto(self, ristretto):
        g = ristretto.generator()
        bases = [g ** 3, g ** 5]
        assert multi_exponentiation(ristretto, bases, [2, 4]) == g ** 26


class TestFixedBaseTable:
    @given(a=scalars)
    @settings(max_examples=30)
    def test_matches_pow(self, group64, a):
        table = _table64(group64)
        assert table.power(a) == group64.generator() ** a

    def test_zero(self, group64):
        assert _table64(group64).power(0) == group64.identity()

    def test_order_reduction(self, group64):
        table = _table64(group64)
        assert table.power(group64.order + 5) == group64.generator() ** 5

    def test_base_property(self, group64):
        assert _table64(group64).base == group64.generator()

    def test_invalid_window(self, group64):
        with pytest.raises(ParameterError):
            FixedBaseTable(group64.generator(), window=0)
        with pytest.raises(ParameterError):
            FixedBaseTable(group64.generator(), window=99)


_cached = {}


def _table64(group64):
    if "t" not in _cached:
        _cached["t"] = FixedBaseTable(group64.generator(), window=5)
    return _cached["t"]
