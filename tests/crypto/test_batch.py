"""Batched Σ-proof verification: equivalence with sequential checking."""

import pytest

from repro.crypto.fiat_shamir import Transcript
from repro.crypto.sigma.batch import SigmaBatch, batch_verify_bits, batch_verify_one_hot
from repro.crypto.sigma.onehot import OneHotProof, prove_one_hot, verify_one_hot
from repro.crypto.sigma.or_bit import BitProof, prove_bits, verify_bits
from repro.errors import ProofRejected
from repro.utils.rng import SeededRNG


def make_batch(pedersen, n, seed="batch"):
    rng = SeededRNG(seed)
    bits = [rng.coin() for _ in range(n)]
    cs, os_ = pedersen.commit_vector(bits, rng)
    proofs = prove_bits(pedersen, cs, os_, Transcript("b"), rng)
    return cs, proofs, rng


class TestBatchVerification:
    def test_accepts_honest_batch(self, pedersen64):
        cs, proofs, rng = make_batch(pedersen64, 24)
        batch_verify_bits(pedersen64, cs, proofs, Transcript("b"), rng)

    def test_agrees_with_sequential(self, pedersen64):
        cs, proofs, rng = make_batch(pedersen64, 12, seed="agree")
        verify_bits(pedersen64, cs, proofs, Transcript("b"))
        batch_verify_bits(pedersen64, cs, proofs, Transcript("b"), rng)

    @pytest.mark.parametrize("position", [0, 5, 11])
    def test_single_bad_proof_fails_batch(self, pedersen64, position):
        cs, proofs, rng = make_batch(pedersen64, 12, seed=f"bad{position}")
        bad = proofs[position]
        proofs[position] = BitProof(
            bad.d0, bad.d1, bad.e0, bad.e1, (bad.v0 + 1) % pedersen64.q, bad.v1
        )
        with pytest.raises(ProofRejected):
            batch_verify_bits(pedersen64, cs, proofs, Transcript("b"), rng)

    def test_one_tampered_of_1000_rejected(self, pedersen64):
        """The RLC catches a single bad equation among a thousand proofs."""
        cs, proofs, rng = make_batch(pedersen64, 1000, seed="big")
        batch_verify_bits(pedersen64, cs, proofs, Transcript("b"), rng)
        victim = proofs[617]
        proofs[617] = BitProof(
            victim.d0,
            victim.d1,
            victim.e0,
            victim.e1,
            victim.v0,
            (victim.v1 + 1) % pedersen64.q,
        )
        with pytest.raises(ProofRejected):
            batch_verify_bits(pedersen64, cs, proofs, Transcript("b"), rng)

    def test_bad_challenge_split_fails(self, pedersen64):
        cs, proofs, rng = make_batch(pedersen64, 6, seed="split")
        p = proofs[2]
        proofs[2] = BitProof(p.d0, p.d1, (p.e0 + 1) % pedersen64.q, p.e1, p.v0, p.v1)
        with pytest.raises(ProofRejected):
            batch_verify_bits(pedersen64, cs, proofs, Transcript("b"), rng)

    def test_length_mismatch(self, pedersen64):
        cs, proofs, rng = make_batch(pedersen64, 4, seed="len")
        with pytest.raises(ProofRejected):
            batch_verify_bits(pedersen64, cs, proofs[:3], Transcript("b"), rng)

    def test_empty_batch(self, pedersen64, rng):
        batch_verify_bits(pedersen64, [], [], Transcript("b"), rng)


def make_one_hot(pedersen, dimension, hot=0, seed="oh"):
    rng = SeededRNG(seed)
    vector = [1 if m == hot else 0 for m in range(dimension)]
    cs, os_ = pedersen.commit_vector(vector, rng)
    proof = prove_one_hot(pedersen, cs, os_, Transcript("oh"), rng)
    return cs, proof, rng


class TestBatchOneHot:
    def test_accepts_honest_proof(self, pedersen64):
        cs, proof, rng = make_one_hot(pedersen64, 8, hot=3)
        verify_one_hot(pedersen64, cs, proof, Transcript("oh"))
        batch_verify_one_hot(pedersen64, cs, proof, Transcript("oh"), rng)

    def test_rejects_tampered_sum(self, pedersen64):
        cs, proof, rng = make_one_hot(pedersen64, 6)
        bad = OneHotProof(proof.bit_proofs, (proof.randomness_sum + 1) % pedersen64.q)
        with pytest.raises(ProofRejected):
            batch_verify_one_hot(pedersen64, cs, bad, Transcript("oh"), rng)

    def test_rejects_tampered_bit_proof(self, pedersen64):
        cs, proof, rng = make_one_hot(pedersen64, 6, hot=2)
        bit = proof.bit_proofs[4]
        tampered = list(proof.bit_proofs)
        tampered[4] = BitProof(
            bit.d0, bit.d1, bit.e0, bit.e1, (bit.v0 + 1) % pedersen64.q, bit.v1
        )
        bad = OneHotProof(tuple(tampered), proof.randomness_sum)
        with pytest.raises(ProofRejected):
            batch_verify_one_hot(pedersen64, cs, bad, Transcript("oh"), rng)

    def test_dimension_mismatch(self, pedersen64):
        cs, proof, rng = make_one_hot(pedersen64, 4)
        with pytest.raises(ProofRejected):
            batch_verify_one_hot(pedersen64, cs[:3], proof, Transcript("oh"), rng)


class TestSigmaBatchAccumulator:
    def test_cross_message_aggregation(self, pedersen64):
        """One accumulator covers many independently-transcripted messages."""
        batch = SigmaBatch(pedersen64, SeededRNG("agg"))
        for i in range(3):
            # Each message was proven over its own transcript; replay each
            # with a fresh transcript of the same domain.
            cs, proofs, _ = make_batch(pedersen64, 5, seed=f"msg{i}")
            batch.add_bit_proofs(cs, proofs, Transcript("b"))
        cs, proof, _ = make_one_hot(pedersen64, 4, hot=1, seed="aggoh")
        batch.add_one_hot(cs, proof, Transcript("oh"))
        assert batch.proof_count == 19
        batch.verify()

    def test_merge_matches_direct(self, pedersen64):
        cs, proofs, _ = make_batch(pedersen64, 8, seed="merge")
        combined = SigmaBatch(pedersen64, SeededRNG("m0"))
        sub = SigmaBatch(pedersen64, SeededRNG("m1"))
        sub.add_bit_proofs(cs[:4], proofs[:4], Transcript("b"))
        combined.merge(sub)
        # Continue the same transcript stream in a second staged batch.
        transcript = Transcript("b")
        sub2 = SigmaBatch(pedersen64, SeededRNG("m2"))
        for c, p in zip(cs[:4], proofs[:4]):
            sub2.add_bit_proof(c, p, transcript)
        combined2 = SigmaBatch(pedersen64, SeededRNG("m3"))
        combined2.merge(sub2)
        combined.verify()
        combined2.verify()

    def test_merge_rejects_foreign_params(self, pedersen64, pedersen128):
        batch = SigmaBatch(pedersen64, SeededRNG("f"))
        with pytest.raises(ProofRejected):
            batch.merge(SigmaBatch(pedersen128, SeededRNG("f")))

    def test_tainted_merge_fails_combined(self, pedersen64):
        combined = SigmaBatch(pedersen64, SeededRNG("t"))
        good_cs, good_proofs, _ = make_batch(pedersen64, 4, seed="good")
        combined.add_bit_proofs(good_cs, good_proofs, Transcript("b"))
        bad_cs, bad_proofs, _ = make_batch(pedersen64, 4, seed="evil")
        victim = bad_proofs[1]
        bad_proofs[1] = BitProof(
            victim.d0, victim.d1, victim.e0, victim.e1,
            (victim.v0 + 1) % pedersen64.q, victim.v1,
        )
        sub = SigmaBatch(pedersen64, SeededRNG("t2"))
        sub.add_bit_proofs(bad_cs, bad_proofs, Transcript("b"))
        combined.merge(sub)
        with pytest.raises(ProofRejected):
            combined.verify()

    def test_empty_accumulator_verifies(self, pedersen64):
        SigmaBatch(pedersen64, SeededRNG("e")).verify()
