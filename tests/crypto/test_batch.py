"""Batched OR-proof verification: equivalence with sequential checking."""

import pytest

from repro.crypto.fiat_shamir import Transcript
from repro.crypto.sigma.batch import batch_verify_bits
from repro.crypto.sigma.or_bit import BitProof, prove_bits, verify_bits
from repro.errors import ProofRejected
from repro.utils.rng import SeededRNG


def make_batch(pedersen, n, seed="batch"):
    rng = SeededRNG(seed)
    bits = [rng.coin() for _ in range(n)]
    cs, os_ = pedersen.commit_vector(bits, rng)
    proofs = prove_bits(pedersen, cs, os_, Transcript("b"), rng)
    return cs, proofs, rng


class TestBatchVerification:
    def test_accepts_honest_batch(self, pedersen64):
        cs, proofs, rng = make_batch(pedersen64, 24)
        batch_verify_bits(pedersen64, cs, proofs, Transcript("b"), rng)

    def test_agrees_with_sequential(self, pedersen64):
        cs, proofs, rng = make_batch(pedersen64, 12, seed="agree")
        verify_bits(pedersen64, cs, proofs, Transcript("b"))
        batch_verify_bits(pedersen64, cs, proofs, Transcript("b"), rng)

    @pytest.mark.parametrize("position", [0, 5, 11])
    def test_single_bad_proof_fails_batch(self, pedersen64, position):
        cs, proofs, rng = make_batch(pedersen64, 12, seed=f"bad{position}")
        bad = proofs[position]
        proofs[position] = BitProof(
            bad.d0, bad.d1, bad.e0, bad.e1, (bad.v0 + 1) % pedersen64.q, bad.v1
        )
        with pytest.raises(ProofRejected):
            batch_verify_bits(pedersen64, cs, proofs, Transcript("b"), rng)

    def test_bad_challenge_split_fails(self, pedersen64):
        cs, proofs, rng = make_batch(pedersen64, 6, seed="split")
        p = proofs[2]
        proofs[2] = BitProof(p.d0, p.d1, (p.e0 + 1) % pedersen64.q, p.e1, p.v0, p.v1)
        with pytest.raises(ProofRejected):
            batch_verify_bits(pedersen64, cs, proofs, Transcript("b"), rng)

    def test_length_mismatch(self, pedersen64):
        cs, proofs, rng = make_batch(pedersen64, 4, seed="len")
        with pytest.raises(ProofRejected):
            batch_verify_bits(pedersen64, cs, proofs[:3], Transcript("b"), rng)

    def test_empty_batch(self, pedersen64, rng):
        batch_verify_bits(pedersen64, [], [], Transcript("b"), rng)
