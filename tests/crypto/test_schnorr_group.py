"""Schnorr group backend: laws, membership, named parameters."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.crypto.schnorr_group import NAMED_GROUPS, SchnorrGroup
from repro.errors import EncodingError, NotOnGroupError, ParameterError
from repro.utils.numth import is_probable_prime
from repro.utils.rng import SeededRNG

scalars = st.integers(min_value=0, max_value=2**70)


class TestNamedGroups:
    @pytest.mark.parametrize("name", sorted(NAMED_GROUPS))
    def test_named_groups_are_safe_primes(self, name):
        p = NAMED_GROUPS[name]
        assert is_probable_prime(p), name
        assert is_probable_prime((p - 1) // 2), name

    def test_named_is_cached(self):
        assert SchnorrGroup.named("p64-sim") is SchnorrGroup.named("p64-sim")

    def test_unknown_name(self):
        with pytest.raises(ParameterError):
            SchnorrGroup.named("nope")

    def test_non_safe_prime_rejected(self):
        with pytest.raises(ParameterError):
            SchnorrGroup(15, name="bad")
        with pytest.raises(ParameterError):
            SchnorrGroup(13, name="prime-but-not-safe")  # (13-1)/2 = 6

    def test_generator_has_prime_order(self, group64):
        g = group64.generator()
        assert g ** group64.order == group64.identity()
        assert g != group64.identity()


class TestGroupLaws:
    @given(a=scalars, b=scalars)
    @settings(max_examples=40)
    def test_exponent_addition(self, group64, a, b):
        g = group64.generator()
        assert (g ** a) * (g ** b) == g ** (a + b)

    @given(a=scalars, b=scalars)
    @settings(max_examples=40)
    def test_exponent_multiplication(self, group64, a, b):
        g = group64.generator()
        assert (g ** a) ** b == g ** (a * b)

    @given(a=scalars)
    @settings(max_examples=40)
    def test_inverse(self, group64, a):
        g = group64.generator()
        x = g ** a
        assert x * ~x == group64.identity()
        assert x / x == group64.identity()

    @given(a=scalars)
    @settings(max_examples=40)
    def test_exponent_reduction_mod_order(self, group64, a):
        g = group64.generator()
        assert g ** a == g ** (a % group64.order)

    def test_identity_neutral(self, group64):
        x = group64.random_element(SeededRNG("e"))
        assert x * group64.identity() == x
        assert group64.identity().is_identity()


class TestMembershipAndEncoding:
    @given(a=scalars)
    @settings(max_examples=30)
    def test_encode_roundtrip(self, group64, a):
        x = group64.generator() ** a
        assert group64.from_bytes(x.to_bytes()) == x

    def test_wrong_length_rejected(self, group64):
        with pytest.raises(EncodingError):
            group64.from_bytes(b"\x01")

    def test_non_residue_rejected(self, group64):
        # Find a quadratic non-residue and check element() rejects it.
        from repro.utils.numth import legendre_symbol

        p = group64.modulus
        value = next(v for v in range(2, 100) if legendre_symbol(v, p) == -1)
        with pytest.raises(NotOnGroupError):
            group64.element(value)

    def test_out_of_range_rejected(self, group64):
        with pytest.raises(NotOnGroupError):
            group64.element(0)
        with pytest.raises(NotOnGroupError):
            group64.element(group64.modulus)

    def test_cross_group_operations_rejected(self, group64, group128):
        with pytest.raises(NotOnGroupError):
            group64.generator() * group128.generator()


class TestHashToGroup:
    def test_membership(self, group64):
        h = group64.hash_to_group(b"label")
        assert h ** group64.order == group64.identity()

    def test_deterministic_and_label_separated(self, group64):
        assert group64.hash_to_group(b"a") == group64.hash_to_group(b"a")
        assert group64.hash_to_group(b"a") != group64.hash_to_group(b"b")

    def test_group_separated(self, group64, group128):
        a = group64.hash_to_group(b"x")
        b = group128.hash_to_group(b"x")
        assert a.to_bytes() != b.to_bytes()


class TestMultiScale:
    @given(st.lists(scalars, min_size=0, max_size=6))
    @settings(max_examples=25)
    def test_matches_naive(self, group64, exps):
        rng = SeededRNG("ms")
        bases = [group64.random_element(rng) for _ in exps]
        naive = group64.identity()
        for base, e in zip(bases, exps):
            naive = naive * base ** e
        assert group64.multi_scale(bases, exps) == naive

    def test_length_mismatch(self, group64):
        with pytest.raises(ParameterError):
            group64.multi_scale([group64.generator()], [1, 2])
