"""Interactive Σ-OR sessions (non-ROM variant)."""

import pytest

from repro.crypto.sigma.interactive import (
    InteractiveBitProver,
    InteractiveBitVerifier,
    run_interactive_bit_proof,
)
from repro.errors import ParameterError, ProofRejected
from repro.utils.rng import SeededRNG


class TestHonestSessions:
    @pytest.mark.parametrize("bit", [0, 1])
    def test_single_session(self, pedersen64, bit):
        rng = SeededRNG(f"i{bit}")
        c, o = pedersen64.commit_fresh(bit, rng)
        transcripts = run_interactive_bit_proof(
            pedersen64, c, o, prover_rng=rng, verifier_rng=SeededRNG("v")
        )
        assert len(transcripts) == 1

    def test_repetitions(self, pedersen64):
        rng = SeededRNG("rep")
        c, o = pedersen64.commit_fresh(1, rng)
        transcripts = run_interactive_bit_proof(
            pedersen64, c, o, repetitions=5, challenge_bits=8,
            prover_rng=rng, verifier_rng=SeededRNG("v"),
        )
        assert len(transcripts) == 5

    def test_small_challenge_space(self, pedersen64):
        rng = SeededRNG("small")
        c, o = pedersen64.commit_fresh(0, rng)
        verifier = InteractiveBitVerifier(
            pedersen64, c, challenge_bits=4, rng=SeededRNG("v4")
        )
        prover = InteractiveBitProver(pedersen64, c, o, rng)
        a = prover.announce()
        e = verifier.challenge(a)
        assert 0 <= e < 16
        verifier.check(prover.respond(e))


class TestProtocolMisuse:
    def test_respond_before_announce(self, pedersen64, rng):
        c, o = pedersen64.commit_fresh(0, rng)
        prover = InteractiveBitProver(pedersen64, c, o, rng)
        with pytest.raises(ParameterError):
            prover.respond(5)

    def test_check_before_challenge(self, pedersen64, rng):
        c, _ = pedersen64.commit_fresh(0, rng)
        verifier = InteractiveBitVerifier(pedersen64, c, rng=rng)
        with pytest.raises(ParameterError):
            verifier.check((0, 0, 0, 0))

    def test_non_bit_witness(self, pedersen64, rng):
        c, o = pedersen64.commit_fresh(3, rng)
        with pytest.raises(ParameterError):
            InteractiveBitProver(pedersen64, c, o, rng)

    def test_zero_repetitions(self, pedersen64, rng):
        c, o = pedersen64.commit_fresh(0, rng)
        with pytest.raises(ParameterError):
            run_interactive_bit_proof(pedersen64, c, o, repetitions=0)


class TestSoundnessAndMalice:
    def test_wrong_response_rejected(self, pedersen64, rng):
        c, o = pedersen64.commit_fresh(0, rng)
        prover = InteractiveBitProver(pedersen64, c, o, rng)
        verifier = InteractiveBitVerifier(pedersen64, c, rng=SeededRNG("v"))
        a = prover.announce()
        e = verifier.challenge(a)
        e0, e1, v0, v1 = prover.respond(e)
        with pytest.raises(ProofRejected):
            verifier.check((e0, e1, (v0 + 1) % pedersen64.q, v1))

    def test_cheating_prover_small_challenges(self, pedersen64):
        """A prover committed to 2 can guess a 2-bit challenge and cheat
        with probability 1/4 per run; over 20 runs it is caught w.h.p.
        We simulate the best strategy: prepare a simulated transcript for
        a guessed challenge, fail when the verifier picks another."""
        from repro.crypto.sigma.or_bit import simulate_bit_transcript

        rng = SeededRNG("cheat")
        c, _ = pedersen64.commit_fresh(2, rng)  # NOT a bit
        verifier_rng = SeededRNG("vr")
        caught = 0
        trials = 20
        for t in range(trials):
            guess = rng.randbits(2)
            fake = simulate_bit_transcript(pedersen64, c, guess, rng)
            verifier = InteractiveBitVerifier(
                pedersen64, c, challenge_bits=2, rng=verifier_rng
            )
            from repro.crypto.sigma.interactive import Announcement

            e = verifier.challenge(Announcement(fake.d0, fake.d1))
            if e != guess:
                # The cheater has no witness; it cannot answer e != guess.
                with pytest.raises(ProofRejected):
                    verifier.check((fake.e0, fake.e1, fake.v0, fake.v1))
                caught += 1
            else:
                verifier.check((fake.e0, fake.e1, fake.v0, fake.v1))
        assert caught >= trials // 2  # expected 3/4 of runs

    def test_malicious_verifier_learns_nothing_structural(self, pedersen64):
        """A verifier choosing adversarial (non-uniform) challenges still
        sees transcripts whose marginals don't depend on the bit: both
        witness values answer every challenge."""
        rng = SeededRNG("mv")
        for challenge in (0, 1, 17, pedersen64.q - 1):
            for bit in (0, 1):
                c, o = pedersen64.commit_fresh(bit, rng)
                prover = InteractiveBitProver(pedersen64, c, o, rng)
                verifier = InteractiveBitVerifier(pedersen64, c, rng=rng)
                a = prover.announce()
                verifier._announcement = a
                verifier._challenge = challenge
                verifier.check(prover.respond(challenge))
