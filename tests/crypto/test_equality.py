"""Equality proofs between two Pedersen commitments."""

import pytest

from repro.crypto.fiat_shamir import Transcript
from repro.crypto.sigma.equality import prove_equal, verify_equal
from repro.errors import ParameterError, ProofRejected
from repro.utils.rng import SeededRNG


class TestEquality:
    def test_roundtrip(self, pedersen64):
        rng = SeededRNG("eq")
        c1, o1 = pedersen64.commit_fresh(42, rng)
        c2, o2 = pedersen64.commit_fresh(42, rng)
        proof = prove_equal(pedersen64, c1, o1, c2, o2, Transcript("t"), rng)
        verify_equal(pedersen64, c1, c2, proof, Transcript("t"))

    def test_unequal_values_refused_at_prove(self, pedersen64):
        rng = SeededRNG("ne")
        c1, o1 = pedersen64.commit_fresh(1, rng)
        c2, o2 = pedersen64.commit_fresh(2, rng)
        with pytest.raises(ParameterError):
            prove_equal(pedersen64, c1, o1, c2, o2, Transcript("t"), rng)

    def test_forged_statement_rejected(self, pedersen64):
        rng = SeededRNG("fg")
        c1, o1 = pedersen64.commit_fresh(5, rng)
        c2, o2 = pedersen64.commit_fresh(5, rng)
        c3, _ = pedersen64.commit_fresh(6, rng)
        proof = prove_equal(pedersen64, c1, o1, c2, o2, Transcript("t"), rng)
        with pytest.raises(ProofRejected):
            verify_equal(pedersen64, c1, c3, proof, Transcript("t"))

    def test_mismatched_opening_refused(self, pedersen64):
        rng = SeededRNG("mm")
        c1, o1 = pedersen64.commit_fresh(5, rng)
        c2, _ = pedersen64.commit_fresh(5, rng)
        _, o_other = pedersen64.commit_fresh(5, rng)
        with pytest.raises(ParameterError):
            prove_equal(pedersen64, c1, o1, c2, o_other, Transcript("t"), rng)
