"""Wire format roundtrips and tamper detection."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.crypto.fiat_shamir import Transcript
from repro.crypto.serialization import (
    decode_bit_proof,
    decode_commitment,
    decode_one_hot_proof,
    decode_opening_proof,
    decode_schnorr_proof,
    encode_bit_proof,
    encode_commitment,
    encode_one_hot_proof,
    encode_opening_proof,
    encode_schnorr_proof,
)
from repro.crypto.sigma.onehot import prove_one_hot, verify_one_hot
from repro.crypto.sigma.opening_pok import prove_opening, verify_opening
from repro.crypto.sigma.or_bit import prove_bit, verify_bit
from repro.crypto.sigma.schnorr_pok import prove_dlog, verify_dlog
from repro.errors import EncodingError, NotOnGroupError
from repro.utils.rng import SeededRNG


class TestCommitmentRoundtrip:
    @given(st.integers(min_value=0, max_value=2**40))
    @settings(max_examples=20)
    def test_roundtrip(self, pedersen64, x):
        c, _ = pedersen64.commit_fresh(x, SeededRNG(f"c{x}"))
        data = encode_commitment(c)
        assert decode_commitment(pedersen64.group, data) == c

    def test_garbage_rejected(self, pedersen64):
        with pytest.raises((EncodingError, NotOnGroupError)):
            decode_commitment(pedersen64.group, b"\x00" * 3)


class TestBitProofRoundtrip:
    @pytest.mark.parametrize("bit", [0, 1])
    def test_roundtrip_and_still_verifies(self, pedersen64, bit):
        rng = SeededRNG(f"bp{bit}")
        c, o = pedersen64.commit_fresh(bit, rng)
        proof = prove_bit(pedersen64, c, o, Transcript("t"), rng)
        restored = decode_bit_proof(pedersen64.group, encode_bit_proof(proof))
        assert restored == proof
        verify_bit(pedersen64, c, restored, Transcript("t"))

    def test_wrong_magic_rejected(self, pedersen64, rng):
        c, o = pedersen64.commit_fresh(0, rng)
        proof = prove_bit(pedersen64, c, o, Transcript("t"), rng)
        data = bytearray(encode_bit_proof(proof))
        data[10] ^= 0xFF  # corrupt inside the magic
        with pytest.raises(EncodingError):
            decode_bit_proof(pedersen64.group, bytes(data))

    def test_truncated_rejected(self, pedersen64, rng):
        c, o = pedersen64.commit_fresh(1, rng)
        proof = prove_bit(pedersen64, c, o, Transcript("t"), rng)
        data = encode_bit_proof(proof)
        with pytest.raises(EncodingError):
            decode_bit_proof(pedersen64.group, data[: len(data) // 2])

    def test_cross_backend(self, ristretto):
        from repro.crypto.pedersen import PedersenParams

        pp = PedersenParams(ristretto)
        rng = SeededRNG("rist")
        c, o = pp.commit_fresh(1, rng)
        proof = prove_bit(pp, c, o, Transcript("t"), rng)
        restored = decode_bit_proof(ristretto, encode_bit_proof(proof))
        verify_bit(pp, c, restored, Transcript("t"))


class TestOneHotRoundtrip:
    def test_roundtrip_and_verifies(self, pedersen64):
        rng = SeededRNG("oh")
        cs, os_ = pedersen64.commit_vector([0, 1, 0, 0], rng)
        proof = prove_one_hot(pedersen64, cs, os_, Transcript("t"), rng)
        restored = decode_one_hot_proof(pedersen64.group, encode_one_hot_proof(proof))
        assert restored == proof
        verify_one_hot(pedersen64, cs, restored, Transcript("t"))

    def test_empty_rejected(self, pedersen64):
        from repro.utils.encoding import encode_length_prefixed

        with pytest.raises(EncodingError):
            decode_one_hot_proof(
                pedersen64.group, encode_length_prefixed(b"repro.onehot.v1")
            )


class TestSchnorrRoundtrip:
    def test_roundtrip_and_verifies(self, group64):
        rng = SeededRNG("sch")
        g = group64.generator()
        w = group64.random_scalar(rng)
        proof = prove_dlog(group64, g, g ** w, w, Transcript("t"), rng)
        restored = decode_schnorr_proof(group64, encode_schnorr_proof(proof))
        assert restored == proof
        verify_dlog(group64, g, g ** w, restored, Transcript("t"))


class TestAllCodecsAllBackends:
    """Satellite sweep: every codec round-trips on every group backend,
    and malformed/truncated/wrong-magic inputs raise EncodingError."""

    @pytest.fixture(
        scope="class", params=["p64-sim", "ristretto255", "p256"]
    )
    def pp(self, request):
        from repro.core.params import _resolve_group
        from repro.crypto.pedersen import PedersenParams

        return PedersenParams(_resolve_group(request.param))

    @given(st.integers(min_value=0, max_value=1), st.integers(min_value=0, max_value=2**32))
    @settings(max_examples=8, deadline=None)
    def test_bit_proof_property_roundtrip(self, pp, bit, nonce):
        from repro.crypto.serialization import decode_bit_proof, encode_bit_proof

        rng = SeededRNG(f"all-{bit}-{nonce}")
        c, o = pp.commit_fresh(bit, rng)
        proof = prove_bit(pp, c, o, Transcript("t"), rng)
        restored = decode_bit_proof(pp.group, encode_bit_proof(proof))
        assert restored == proof
        verify_bit(pp, c, restored, Transcript("t"))

    def test_one_hot_roundtrip(self, pp):
        from repro.crypto.serialization import (
            decode_one_hot_proof,
            encode_one_hot_proof,
        )

        rng = SeededRNG("all-oh")
        cs, os_ = pp.commit_vector([0, 0, 1], rng)
        proof = prove_one_hot(pp, cs, os_, Transcript("t"), rng)
        restored = decode_one_hot_proof(pp.group, encode_one_hot_proof(proof))
        assert restored == proof
        verify_one_hot(pp, cs, restored, Transcript("t"))

    def test_bit_vector_roundtrip_and_verifies(self, pp):
        from repro.crypto.serialization import (
            decode_bit_vector_proof,
            encode_bit_vector_proof,
        )
        from repro.crypto.sigma.bitvec import prove_bit_vector, verify_bit_vector

        rng = SeededRNG("all-bv")
        cs, os_ = pp.commit_vector([1, 0, 1, 1], rng)
        proof = prove_bit_vector(pp, cs, os_, Transcript("t"), rng)
        restored = decode_bit_vector_proof(pp.group, encode_bit_vector_proof(proof))
        assert restored == proof
        verify_bit_vector(pp, cs, restored, Transcript("t"))

    def test_validity_proof_dispatch(self, pp):
        from repro.crypto.serialization import (
            decode_validity_proof,
            encode_validity_proof,
        )
        from repro.crypto.sigma.bitvec import prove_bit_vector

        rng = SeededRNG("all-dispatch")
        c, o = pp.commit_fresh(1, rng)
        bit = prove_bit(pp, c, o, Transcript("t"), rng)
        cs, os_ = pp.commit_vector([0, 1], rng)
        bitvec = prove_bit_vector(pp, cs, os_, Transcript("t"), rng)
        for proof in (bit, bitvec):
            assert decode_validity_proof(pp.group, encode_validity_proof(proof)) == proof
        with pytest.raises(EncodingError):
            decode_validity_proof(pp.group, b"\x00\x00\x00\x03abc")

    def test_schnorr_and_opening_roundtrip(self, pp):
        from repro.crypto.serialization import (
            decode_opening_proof,
            decode_schnorr_proof,
            encode_opening_proof,
            encode_schnorr_proof,
        )

        rng = SeededRNG("all-so")
        group = pp.group
        w = group.random_scalar(rng)
        schnorr = prove_dlog(group, pp.g, pp.g ** w, w, Transcript("t"), rng)
        assert decode_schnorr_proof(group, encode_schnorr_proof(schnorr)) == schnorr
        c, o = pp.commit_fresh(5, rng)
        opening = prove_opening(pp, c, o, Transcript("t"), rng)
        assert decode_opening_proof(group, encode_opening_proof(opening)) == opening

    @pytest.mark.parametrize("cut", ["truncate", "magic", "empty"])
    def test_malformed_inputs_rejected(self, pp, cut):
        from repro.crypto.serialization import decode_bit_proof, encode_bit_proof

        rng = SeededRNG("all-bad")
        c, o = pp.commit_fresh(0, rng)
        data = bytearray(encode_bit_proof(prove_bit(pp, c, o, Transcript("t"), rng)))
        if cut == "truncate":
            data = data[: len(data) // 2]
        elif cut == "magic":
            data[8] ^= 0xFF
        else:
            data = b""
        with pytest.raises((EncodingError, NotOnGroupError)):
            decode_bit_proof(pp.group, bytes(data))


class TestOpeningRoundtrip:
    def test_roundtrip_and_verifies(self, pedersen64):
        rng = SeededRNG("op")
        c, o = pedersen64.commit_fresh(9, rng)
        proof = prove_opening(pedersen64, c, o, Transcript("t"), rng)
        restored = decode_opening_proof(pedersen64.group, encode_opening_proof(proof))
        assert restored == proof
        verify_opening(pedersen64, c, restored, Transcript("t"))

    def test_arity_check(self, pedersen64):
        from repro.utils.encoding import encode_length_prefixed

        with pytest.raises(EncodingError):
            decode_opening_proof(
                pedersen64.group,
                encode_length_prefixed(b"repro.opening.v1", b"x"),
            )
