"""One-hot proofs: the M-dimensional client-validity gadget."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.crypto.fiat_shamir import Transcript
from repro.crypto.sigma.onehot import OneHotProof, prove_one_hot, verify_one_hot
from repro.errors import ParameterError, ProofRejected
from repro.utils.rng import SeededRNG


def one_hot(m, hot):
    return [1 if i == hot else 0 for i in range(m)]


class TestCompleteness:
    @given(st.integers(min_value=1, max_value=12), st.data())
    @settings(max_examples=20)
    def test_all_hot_positions(self, pedersen64, m, data):
        hot = data.draw(st.integers(min_value=0, max_value=m - 1))
        rng = SeededRNG(f"oh{m}{hot}")
        cs, os_ = pedersen64.commit_vector(one_hot(m, hot), rng)
        proof = prove_one_hot(pedersen64, cs, os_, Transcript("t"), rng)
        verify_one_hot(pedersen64, cs, proof, Transcript("t"))

    def test_dimension_one(self, pedersen64, rng):
        cs, os_ = pedersen64.commit_vector([1], rng)
        proof = prove_one_hot(pedersen64, cs, os_, Transcript("t"), rng)
        verify_one_hot(pedersen64, cs, proof, Transcript("t"))
        assert proof.dimension == 1


class TestWitnessValidation:
    @pytest.mark.parametrize(
        "vector",
        [
            [0, 0, 0, 0],  # cold
            [1, 1, 0, 0],  # two hot
            [2, 0, 0, 0],  # non-bit coordinate summing to... 2
            [1, 1, 1, 1],  # all hot
        ],
    )
    def test_invalid_vectors_refused(self, pedersen64, rng, vector):
        cs, os_ = pedersen64.commit_vector(vector, rng)
        with pytest.raises(ParameterError):
            prove_one_hot(pedersen64, cs, os_, Transcript("t"), rng)

    def test_empty_refused(self, pedersen64, rng):
        with pytest.raises(ParameterError):
            prove_one_hot(pedersen64, [], [], Transcript("t"), rng)

    def test_length_mismatch_refused(self, pedersen64, rng):
        cs, os_ = pedersen64.commit_vector([1, 0], rng)
        with pytest.raises(ParameterError):
            prove_one_hot(pedersen64, cs, os_[:1], Transcript("t"), rng)


class TestSoundness:
    def test_proof_bound_to_commitments(self, pedersen64, rng):
        cs1, os1 = pedersen64.commit_vector(one_hot(4, 0), rng)
        cs2, _ = pedersen64.commit_vector(one_hot(4, 1), rng)
        proof = prove_one_hot(pedersen64, cs1, os1, Transcript("t"), rng)
        with pytest.raises(ProofRejected):
            verify_one_hot(pedersen64, cs2, proof, Transcript("t"))

    def test_dimension_mismatch_rejected(self, pedersen64, rng):
        cs, os_ = pedersen64.commit_vector(one_hot(4, 0), rng)
        proof = prove_one_hot(pedersen64, cs, os_, Transcript("t"), rng)
        with pytest.raises(ProofRejected):
            verify_one_hot(pedersen64, cs[:3], proof, Transcript("t"))

    def test_tampered_randomness_sum_rejected(self, pedersen64, rng):
        cs, os_ = pedersen64.commit_vector(one_hot(3, 1), rng)
        proof = prove_one_hot(pedersen64, cs, os_, Transcript("t"), rng)
        bad = OneHotProof(proof.bit_proofs, (proof.randomness_sum + 1) % pedersen64.q)
        with pytest.raises(ProofRejected):
            verify_one_hot(pedersen64, cs, bad, Transcript("t"))

    def test_sum_check_catches_two_hot_with_forged_bitproofs(self, pedersen64, rng):
        """Even if every coordinate is a genuine bit, a two-hot vector
        fails the product check Π c_j == g·h^r."""
        vector = [1, 1, 0]
        cs, os_ = pedersen64.commit_vector(vector, rng)
        # Build per-coordinate bit proofs honestly (each coordinate IS a bit).
        t = Transcript("t")
        t.append_int("dimension", len(cs))
        from repro.crypto.sigma.or_bit import prove_bit

        bit_proofs = tuple(
            prove_bit(pedersen64, c, o, t, rng) for c, o in zip(cs, os_)
        )
        r_sum = sum(o.randomness for o in os_) % pedersen64.q
        forged = OneHotProof(bit_proofs, r_sum)
        with pytest.raises(ProofRejected):
            verify_one_hot(pedersen64, cs, forged, Transcript("t"))
