"""Simulated network semantics: ordering, aborts, accounting."""

import pytest

from repro.errors import ParameterError, ProtocolAbort
from repro.mpc.bus import SimulatedNetwork


@pytest.fixture()
def net():
    network = SimulatedNetwork()
    for name in ("alice", "bob", "carol"):
        network.register(name)
    return network


class TestDelivery:
    def test_fifo_per_channel(self, net):
        net.send("alice", "bob", 1)
        net.send("alice", "bob", 2)
        assert net.receive("bob", "alice") == 1
        assert net.receive("bob", "alice") == 2

    def test_channels_independent(self, net):
        net.send("alice", "bob", "ab")
        net.send("carol", "bob", "cb")
        assert net.receive("bob", "carol") == "cb"
        assert net.receive("bob", "alice") == "ab"

    def test_missing_message_aborts(self, net):
        with pytest.raises(ProtocolAbort) as err:
            net.receive("bob", "alice")
        assert err.value.party == "alice"

    def test_try_receive(self, net):
        assert net.try_receive("bob", "alice") is None
        net.send("alice", "bob", 7)
        assert net.try_receive("bob", "alice") == 7

    def test_broadcast_reaches_everyone_but_sender(self, net):
        net.broadcast("alice", "hello")
        assert net.receive("bob", "alice") == "hello"
        assert net.receive("carol", "alice") == "hello"
        assert net.try_receive("alice", "alice") is None


class TestRegistration:
    def test_duplicate_rejected(self, net):
        with pytest.raises(ParameterError):
            net.register("alice")

    def test_star_reserved(self, net):
        with pytest.raises(ParameterError):
            net.register("*")

    def test_unknown_party_rejected(self, net):
        with pytest.raises(ParameterError):
            net.send("alice", "nobody", 1)
        with pytest.raises(ParameterError):
            net.send("nobody", "alice", 1)


class TestAccounting:
    def test_bytes_counted(self, net):
        net.send("alice", "bob", b"12345")
        assert net.bytes_sent["alice"] == 5
        net.send("alice", "bob", 256)  # 2-byte int
        assert net.bytes_sent["alice"] == 7

    def test_message_counts(self, net):
        net.send("alice", "bob", 1)
        net.broadcast("bob", 2)
        assert net.messages_sent["alice"] == 1
        assert net.messages_sent["bob"] == 1
        assert net.total_messages() == 2

    def test_structured_payload_size(self, net):
        net.send("alice", "bob", [b"ab", b"cd"])
        assert net.bytes_sent["alice"] == 4
        net.send("alice", "bob", {b"k": b"vvv"})
        assert net.bytes_sent["alice"] == 8

    def test_group_element_payload(self, net, group64):
        element = group64.generator()
        net.send("alice", "bob", element)
        assert net.bytes_sent["alice"] == len(element.to_bytes())

    def test_log_recording(self):
        net = SimulatedNetwork(record_log=True)
        net.register("a")
        net.register("b")
        net.send("a", "b", 1)
        assert len(net.log) == 1
        assert net.log[0].sender == "a"
