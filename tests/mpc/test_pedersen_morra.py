"""Morra over Pedersen commitments (generic-scheme instantiation)."""

import pytest

from repro.analysis.distributions import chi_square_uniform
from repro.errors import ProtocolAbort
from repro.mpc.adversary import EquivocatingMorraParticipant
from repro.mpc.morra import MorraParticipant, run_morra_batch
from repro.mpc.pedersen_morra import PedersenMorraScheme
from repro.utils.rng import SeededRNG


@pytest.fixture()
def scheme(pedersen64):
    return PedersenMorraScheme(pedersen64)


class TestPedersenMorraScheme:
    def test_commit_verify_roundtrip(self, scheme):
        c, r = scheme.commit(12345, SeededRNG("pm"))
        scheme.verify(c, 12345, r)
        assert scheme.opens_to(c, 12345, r)

    def test_wrong_value_rejected(self, scheme):
        c, r = scheme.commit(5, SeededRNG("w"))
        assert not scheme.opens_to(c, 6, r)

    def test_malformed_commitment_rejected(self, scheme):
        from repro.mpc.pedersen_morra import _PedersenMorraCommitment

        bad = _PedersenMorraCommitment(b"\x00\x01")
        assert not scheme.opens_to(bad, 1, b"\x00" * 8)


class TestMorraOverPedersen:
    def test_batch_runs(self, scheme, group64):
        parties = [
            MorraParticipant("a", SeededRNG("a")),
            MorraParticipant("b", SeededRNG("b")),
        ]
        outcome = run_morra_batch(parties, group64.order, 40, scheme=scheme)
        assert len(outcome.values) == 40
        assert all(0 <= v < group64.order for v in outcome.values)

    def test_bits_unbiased(self, scheme, group64):
        parties = [
            MorraParticipant("a", SeededRNG("u1")),
            MorraParticipant("b", SeededRNG("u2")),
        ]
        bits = run_morra_batch(parties, group64.order, 600, scheme=scheme).bits()
        assert chi_square_uniform(bits) > 0.001

    def test_equivocation_still_caught(self, scheme, group64):
        cheater = EquivocatingMorraParticipant("aaa", rng=SeededRNG("e"))
        honest = MorraParticipant("zzz", SeededRNG("h"))
        with pytest.raises(ProtocolAbort) as err:
            run_morra_batch([cheater, honest], group64.order, 3, scheme=scheme)
        assert err.value.party == "aaa"

    def test_same_protocol_different_scheme_same_semantics(self, scheme, group64):
        """Hash and Pedersen instantiations produce identically-shaped
        outcomes (values differ — fresh randomness — but both uniform)."""
        parties1 = [MorraParticipant("a", SeededRNG("s1")), MorraParticipant("b", SeededRNG("s2"))]
        parties2 = [MorraParticipant("a", SeededRNG("s1")), MorraParticipant("b", SeededRNG("s2"))]
        hash_outcome = run_morra_batch(parties1, group64.order, 5)
        pedersen_outcome = run_morra_batch(parties2, group64.order, 5, scheme=scheme)
        assert len(hash_outcome.values) == len(pedersen_outcome.values)
