"""Hash commitments used by Morra."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import CommitmentOpeningError
from repro.mpc.commit import HashCommitmentScheme
from repro.utils.rng import SeededRNG


class TestHashCommitments:
    @given(st.integers(min_value=0, max_value=2**64))
    @settings(max_examples=30)
    def test_roundtrip(self, value):
        scheme = HashCommitmentScheme()
        c, r = scheme.commit(value, SeededRNG(f"v{value}"))
        scheme.verify(c, value, r)
        assert scheme.opens_to(c, value, r)

    def test_wrong_value_rejected(self):
        scheme = HashCommitmentScheme()
        c, r = scheme.commit(5, SeededRNG("w"))
        with pytest.raises(CommitmentOpeningError):
            scheme.verify(c, 6, r)

    def test_wrong_randomness_rejected(self):
        scheme = HashCommitmentScheme()
        c, r = scheme.commit(5, SeededRNG("x"))
        assert not scheme.opens_to(c, 5, b"\x00" * 32)

    def test_hiding_different_randomness(self):
        """Commitments to the same value are unlinkable across randomness."""
        scheme = HashCommitmentScheme()
        rng = SeededRNG("h")
        digests = {scheme.commit(1, rng)[0].digest for _ in range(20)}
        assert len(digests) == 20

    def test_domain_separation(self):
        a = HashCommitmentScheme(b"domain-a")
        b = HashCommitmentScheme(b"domain-b")
        _, r = a.commit(1, SeededRNG("d"))
        ca = a._digest(1, r)
        cb = b._digest(1, r)
        assert ca != cb

    def test_commitment_is_32_bytes(self):
        c, _ = HashCommitmentScheme().commit(123, SeededRNG("l"))
        assert len(c.digest) == 32
        assert c.to_bytes() == c.digest
