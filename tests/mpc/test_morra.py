"""Π_morra (Algorithm 1): correctness, uniformity, active adversaries."""

import pytest

from repro.analysis.distributions import chi_square_uniform
from repro.errors import EarlyExit, ParameterError, ProtocolAbort
from repro.mpc.adversary import (
    AbortingMorraParticipant,
    BiasedMorraParticipant,
    EquivocatingMorraParticipant,
    StuckMorraParticipant,
)
from repro.mpc.bus import SimulatedNetwork
from repro.mpc.morra import MorraParticipant, morra_bits, run_morra, run_morra_batch
from repro.utils.rng import SeededRNG

Q = 2**61 - 1


def honest(name, seed=None):
    return MorraParticipant(name, SeededRNG(seed or name))


class TestHonestRuns:
    def test_single_value_in_range(self):
        value = run_morra([honest("a"), honest("b")], Q)
        assert 0 <= value < Q

    def test_batch_shape(self):
        outcome = run_morra_batch([honest("a"), honest("b")], Q, 50)
        assert len(outcome.values) == 50
        assert all(0 <= v < Q for v in outcome.values)

    def test_three_parties(self):
        outcome = run_morra_batch([honest("a"), honest("b"), honest("c")], Q, 10)
        assert len(outcome.values) == 10

    def test_bits_unbiased(self):
        """Chi-square test on 4000 public coins."""
        bits = morra_bits([honest("a", "u1"), honest("b", "u2")], Q, 4000)
        assert chi_square_uniform(bits) > 0.001

    def test_values_uniform_coarse(self):
        """Bucket the Z_q values into 8 ranges; expect rough uniformity."""
        outcome = run_morra_batch([honest("a", "v1"), honest("b", "v2")], Q, 2000)
        buckets = [0] * 8
        for value in outcome.values:
            buckets[value * 8 // Q] += 1
        assert max(buckets) - min(buckets) < 250

    def test_deterministic_given_seeds(self):
        one = run_morra_batch([honest("a", "s1"), honest("b", "s2")], Q, 5)
        two = run_morra_batch([honest("a", "s1"), honest("b", "s2")], Q, 5)
        assert one.values == two.values

    def test_network_traffic_recorded(self):
        net = SimulatedNetwork()
        run_morra_batch([honest("a"), honest("b")], Q, 3, network=net)
        assert net.total_messages() == 4  # commit + reveal per party
        assert net.total_bytes() > 0


class TestAdversaries:
    def test_biased_participant_harmless(self):
        """One party always contributes 0 — output still uniform thanks to
        the honest party (the paper's 'as long as one participant is
        honest' claim)."""
        parties = [BiasedMorraParticipant("z", 0), honest("h", "harmless")]
        bits = morra_bits(parties, Q, 3000)
        assert chi_square_uniform(bits) > 0.001

    def test_equivocation_detected(self):
        """Changing a value after seeing openings breaks the commitment
        check; the protocol aborts and names the cheater.  The cheater is
        'aaa' so it reveals last (reverse lexicographic order) and sees
        the honest opening first."""
        cheater = EquivocatingMorraParticipant("aaa", rng=SeededRNG("e"))
        with pytest.raises(ProtocolAbort) as err:
            run_morra_batch([cheater, honest("zzz")], Q, 4)
        assert err.value.party == "aaa"

    def test_equivocator_who_reveals_first_is_honest(self):
        """If the equivocator must reveal first (no openings observed yet),
        it behaves honestly — binding + ordering leave it no advantage."""
        cheater = EquivocatingMorraParticipant("zzz", rng=SeededRNG("e2"))
        outcome = run_morra_batch([cheater, honest("aaa")], Q, 4)
        assert len(outcome.values) == 4

    def test_abort_during_reveal(self):
        with pytest.raises(EarlyExit) as err:
            run_morra_batch([AbortingMorraParticipant("quitter"), honest("h")], Q, 2)
        assert err.value.party == "quitter"

    def test_stuck_at_sampling(self):
        with pytest.raises(EarlyExit):
            run_morra_batch([StuckMorraParticipant("stuck"), honest("h")], Q, 2)

    def test_out_of_range_reveal_detected(self):
        class OutOfRange(MorraParticipant):
            def sample_values(self, q, count):
                return [q + 5] * count  # commits to an illegal value

        with pytest.raises(ProtocolAbort):
            run_morra_batch([OutOfRange("bad", rng=SeededRNG("o")), honest("h")], Q, 2)


class TestValidation:
    def test_needs_two_parties(self):
        with pytest.raises(ParameterError):
            run_morra_batch([honest("a")], Q, 1)

    def test_positive_count(self):
        with pytest.raises(ParameterError):
            run_morra_batch([honest("a"), honest("b")], Q, 0)

    def test_unique_names(self):
        with pytest.raises(ParameterError):
            run_morra_batch([honest("a"), honest("a")], Q, 1)

    def test_tiny_modulus_rejected(self):
        with pytest.raises(ParameterError):
            run_morra_batch([honest("a"), honest("b")], 2, 1)
