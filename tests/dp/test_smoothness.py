"""Smoothness of the Binomial distribution (Definition 13 / Lemma B.2)."""

import math

import pytest

from repro.dp.binomial import coins_for_privacy, epsilon_for_coins
from repro.dp.smoothness import binomial_log_pmf, is_smooth, smoothness_delta
from repro.errors import ParameterError


class TestLogPmf:
    def test_sums_to_one(self):
        n = 64
        total = sum(math.exp(binomial_log_pmf(n, y)) for y in range(n + 1))
        assert total == pytest.approx(1.0, abs=1e-12)

    def test_symmetry(self):
        n = 50
        for y in range(0, 25):
            assert binomial_log_pmf(n, y) == pytest.approx(binomial_log_pmf(n, n - y))

    def test_outside_support(self):
        assert binomial_log_pmf(10, -1) == float("-inf")
        assert binomial_log_pmf(10, 11) == float("-inf")


class TestSmoothness:
    def test_lemma_parameters_are_smooth(self):
        """For nb from Lemma 2.1 the exact failure mass is below δ —
        the lemma's constants are sound (indeed conservative)."""
        delta = 2**-8
        for eps in (1.5, 2.0, 3.0):
            nb = coins_for_privacy(eps, delta)
            exact = smoothness_delta(nb, eps, k=1)
            assert exact <= delta, (eps, nb, exact)

    def test_lemma_is_conservative(self):
        """The exact δ is far below the lemma's bound — expected, the
        paper's constants come from loose Chernoff bounds."""
        delta = 2**-8
        nb = coins_for_privacy(2.0, delta)
        assert smoothness_delta(nb, 2.0) < delta / 10

    def test_tiny_epsilon_not_smooth_for_small_n(self):
        """A 20-coin binomial cannot be (0.01, tiny-δ)-smooth: the
        central ratio alone exceeds e^0.01."""
        assert smoothness_delta(20, 0.01) > 0.3

    def test_monotone_in_epsilon(self):
        """Larger ε ⇒ easier requirement ⇒ smaller failure mass."""
        deltas = [smoothness_delta(100, eps) for eps in (0.05, 0.2, 0.5, 1.0)]
        assert deltas == sorted(deltas, reverse=True)

    def test_more_coins_smoother(self):
        eps = 0.5
        assert smoothness_delta(400, eps) <= smoothness_delta(50, eps)

    def test_is_smooth_wrapper(self):
        assert is_smooth(1000, 1.0, 0.01)
        assert not is_smooth(20, 0.01, 1e-6)

    def test_k_greater_than_one(self):
        """k-incremental queries: smoothness over shifts up to k."""
        d1 = smoothness_delta(200, 0.5, k=1)
        d3 = smoothness_delta(200, 0.5, k=3)
        assert d3 >= d1  # larger shift family can only fail more

    def test_invalid_args(self):
        with pytest.raises(ParameterError):
            smoothness_delta(0, 1.0)
        with pytest.raises(ParameterError):
            smoothness_delta(10, 0.0)
        with pytest.raises(ParameterError):
            smoothness_delta(10, 1.0, k=0)


class TestEndToEndPrivacy:
    def test_dp_guarantee_via_smoothness(self):
        """The chain Lemma B.2 → Lemma B.1 → Lemma 2.1: for the calibrated
        nb, adding Binomial noise to a sensitivity-1 count is (ε, δ)-DP;
        verified by the exact smoothness computation."""
        eps_target, delta_target = 2.0, 2**-8
        nb = coins_for_privacy(eps_target, delta_target)
        # ε reported for this nb:
        eps_actual = epsilon_for_coins(nb, delta_target)
        assert eps_actual <= eps_target + 1e-9
        # Exact smoothness at the *actual* epsilon:
        assert smoothness_delta(nb, eps_actual, k=1) <= delta_target
