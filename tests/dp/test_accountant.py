"""Privacy accounting: basic and advanced composition."""

import math

import pytest

from repro.dp.accountant import PrivacyAccountant, advanced_composition, basic_composition
from repro.errors import ParameterError


class TestBasicComposition:
    def test_sums(self):
        assert basic_composition([(1.0, 0.1), (2.0, 0.2)]) == (3.0, pytest.approx(0.3))

    def test_empty(self):
        assert basic_composition([]) == (0.0, 0.0)


class TestAdvancedComposition:
    def test_formula(self):
        eps, delta, k, dp = 0.1, 1e-6, 100, 1e-6
        got_eps, got_delta = advanced_composition(eps, delta, k, dp)
        expected = eps * math.sqrt(2 * k * math.log(1 / dp)) + k * eps * (math.exp(eps) - 1)
        assert got_eps == pytest.approx(expected)
        assert got_delta == pytest.approx(k * delta + dp)

    def test_beats_basic_for_many_small_queries(self):
        eps, delta, k = 0.05, 1e-8, 400
        adv_eps, _ = advanced_composition(eps, delta, k, 1e-6)
        basic_eps = k * eps
        assert adv_eps < basic_eps

    def test_invalid(self):
        with pytest.raises(ParameterError):
            advanced_composition(0.1, 0.0, 0, 1e-6)
        with pytest.raises(ParameterError):
            advanced_composition(0.1, 0.0, 5, 0.0)


class TestAccountant:
    def test_charges_accumulate(self):
        acc = PrivacyAccountant()
        acc.charge(1.0, 1e-6)
        acc.charge(0.5, 1e-6)
        assert acc.total_basic() == (1.5, pytest.approx(2e-6))

    def test_advanced_for_identical_charges(self):
        acc = PrivacyAccountant()
        for _ in range(50):
            acc.charge(0.05, 1e-8)
        adv_eps, _ = acc.total_advanced(1e-6)
        assert adv_eps < 50 * 0.05

    def test_advanced_mixed_falls_back(self):
        acc = PrivacyAccountant()
        acc.charge(0.1, 0.0)
        acc.charge(0.2, 0.0)
        eps, delta = acc.total_advanced(1e-6)
        assert eps == pytest.approx(0.3)
        assert delta == pytest.approx(1e-6)

    def test_empty(self):
        assert PrivacyAccountant().total_advanced(1e-6) == (0.0, 0.0)

    def test_negative_rejected(self):
        with pytest.raises(ParameterError):
            PrivacyAccountant().charge(-1.0, 0.0)
