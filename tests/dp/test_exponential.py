"""Exponential mechanism and report-noisy-max."""

import math

import pytest

from repro.dp.exponential import ExponentialMechanism, report_noisy_max
from repro.errors import ParameterError
from repro.utils.rng import SeededRNG


class TestExponentialMechanism:
    def test_probabilities_normalized(self):
        mech = ExponentialMechanism(1.0)
        probs = mech.selection_probabilities([10, 5, 1])
        assert sum(probs) == pytest.approx(1.0)
        assert probs[0] > probs[1] > probs[2]

    def test_probability_ratio_matches_definition(self):
        """Pr[a]/Pr[b] = exp(ε(u_a - u_b)/(2Δ)) exactly."""
        mech = ExponentialMechanism(2.0, sensitivity=1.0)
        probs = mech.selection_probabilities([7.0, 4.0])
        assert probs[0] / probs[1] == pytest.approx(math.exp(2.0 * 3.0 / 2.0))

    def test_select_prefers_high_utility(self):
        mech = ExponentialMechanism(2.0)
        rng = SeededRNG("em")
        picks = [mech.select([20, 1, 1, 1], rng) for _ in range(200)]
        assert picks.count(0) > 190

    def test_select_near_uniform_for_equal_utilities(self):
        mech = ExponentialMechanism(1.0)
        rng = SeededRNG("eq")
        picks = [mech.select([5, 5], rng) for _ in range(400)]
        assert 120 < picks.count(0) < 280

    def test_epsilon_zero_limit(self):
        """Tiny ε ⇒ near-uniform regardless of utilities."""
        mech = ExponentialMechanism(1e-9)
        probs = mech.selection_probabilities([1000, 0])
        assert probs[0] == pytest.approx(0.5, abs=1e-6)

    def test_empirical_matches_exact(self):
        mech = ExponentialMechanism(1.0)
        utilities = [3.0, 2.0, 0.0]
        exact = mech.selection_probabilities(utilities)
        rng = SeededRNG("emp")
        trials = 3000
        counts = [0, 0, 0]
        for _ in range(trials):
            counts[mech.select(utilities, rng)] += 1
        for i in range(3):
            assert counts[i] / trials == pytest.approx(exact[i], abs=0.05)

    def test_validation(self):
        with pytest.raises(ParameterError):
            ExponentialMechanism(0.0)
        with pytest.raises(ParameterError):
            ExponentialMechanism(1.0, sensitivity=0)
        with pytest.raises(ParameterError):
            ExponentialMechanism(1.0).select([])

    def test_numerical_stability_large_utilities(self):
        mech = ExponentialMechanism(1.0)
        probs = mech.selection_probabilities([1e6, 1e6 - 1])
        assert sum(probs) == pytest.approx(1.0)


class TestReportNoisyMax:
    def test_clear_winner_usually_selected(self):
        rng = SeededRNG("rnm")
        picks = [report_noisy_max([100, 10, 5], 1.0, rng) for _ in range(100)]
        assert picks.count(0) > 90

    def test_low_epsilon_randomizes(self):
        rng = SeededRNG("low")
        picks = [report_noisy_max([11, 10], 0.01, rng) for _ in range(300)]
        assert 60 < picks.count(1) < 240  # nearly a coin flip

    def test_validation(self):
        with pytest.raises(ParameterError):
            report_noisy_max([], 1.0)
        with pytest.raises(ParameterError):
            report_noisy_max([1.0], 0.0)
