"""Exact hockey-stick privacy curves vs Lemma 2.1."""

import math

import pytest

from repro.dp.binomial import coins_for_privacy, epsilon_for_coins
from repro.dp.privacy_curve import exact_epsilon, hockey_stick_delta, privacy_profile
from repro.errors import ParameterError


class TestHockeyStick:
    def test_delta_at_zero_epsilon_is_tv(self):
        """δ(0) equals the total-variation distance between the shifts."""
        nb = 40
        delta0 = hockey_stick_delta(nb, 0.0)
        # TV of Binomial vs its 1-shift = max-coupling mass = P(Z = mode)-ish;
        # compute independently:
        from repro.dp.smoothness import binomial_log_pmf

        tv = 0.5 * sum(
            abs(
                math.exp(binomial_log_pmf(nb, z))
                - (math.exp(binomial_log_pmf(nb, z - 1)) if z >= 1 else 0.0)
            )
            for z in range(nb + 2)
        )
        assert delta0 == pytest.approx(tv, abs=1e-9)

    def test_monotone_decreasing_in_epsilon(self):
        nb = 60
        deltas = [hockey_stick_delta(nb, e) for e in (0.0, 0.2, 0.5, 1.0, 2.0)]
        assert deltas == sorted(deltas, reverse=True)

    def test_more_coins_more_privacy(self):
        assert hockey_stick_delta(400, 0.5) < hockey_stick_delta(40, 0.5)

    def test_larger_shift_leaks_more(self):
        nb = 80
        assert hockey_stick_delta(nb, 0.5, shift=3) >= hockey_stick_delta(nb, 0.5, shift=1)

    def test_validation(self):
        with pytest.raises(ParameterError):
            hockey_stick_delta(0, 1.0)
        with pytest.raises(ParameterError):
            hockey_stick_delta(10, -1.0)
        with pytest.raises(ParameterError):
            hockey_stick_delta(10, 1.0, shift=0)


class TestLemmaSoundness:
    def test_lemma_2_1_dominates_exact_curve(self):
        """For nb calibrated by Lemma 2.1, the exact δ at the lemma's ε is
        (far) below the target δ — the lemma is sound."""
        for eps_target in (1.0, 2.0):
            delta_target = 2**-8
            nb = coins_for_privacy(eps_target, delta_target)
            eps_claimed = epsilon_for_coins(nb, delta_target)
            exact_delta = hockey_stick_delta(nb, eps_claimed)
            assert exact_delta <= delta_target

    def test_lemma_conservatism_quantified(self):
        """The exact ε for the calibrated nb is several times smaller than
        the lemma's — the protocol over-delivers privacy (equivalently,
        far fewer coins would suffice; relevant to Table 1's costs)."""
        delta = 2**-8
        nb = coins_for_privacy(1.0, delta)
        tight = exact_epsilon(nb, delta)
        assert tight < 1.0 / 3.0

    def test_exact_epsilon_consistent_with_delta(self):
        nb, delta = 200, 1e-3
        eps = exact_epsilon(nb, delta)
        assert hockey_stick_delta(nb, eps) <= delta
        assert hockey_stick_delta(nb, eps - 0.01) > delta

    def test_profile_shape(self):
        profile = privacy_profile(100, [0.1, 0.5, 1.0])
        assert [p[0] for p in profile] == [0.1, 0.5, 1.0]
        assert profile[0][1] > profile[2][1]

    def test_exact_epsilon_validation(self):
        with pytest.raises(ParameterError):
            exact_epsilon(100, 0.0)
