"""Binomial mechanism: Lemma 2.1 calibration and sampling."""

import math

import pytest
from hypothesis import given, settings, strategies as st

from repro.dp.binomial import (
    MIN_COINS,
    BinomialMechanism,
    coins_for_privacy,
    epsilon_for_coins,
    sample_binomial,
)
from repro.errors import ParameterError
from repro.utils.rng import SeededRNG


class TestCalibration:
    def test_lemma_formula(self):
        """nb = ceil(100 ln(2/δ) / ε²)."""
        eps, delta = 1.0, 2**-10
        assert coins_for_privacy(eps, delta) == math.ceil(100 * math.log(2 / delta))

    def test_roundtrip(self):
        """epsilon_for_coins inverts coins_for_privacy (up to ceiling)."""
        delta = 2**-10
        for eps in (0.5, 0.88, 1.25, 2.0):
            nb = coins_for_privacy(eps, delta)
            recovered = epsilon_for_coins(nb, delta)
            assert recovered <= eps + 1e-9
            assert epsilon_for_coins(nb - 1, delta) > eps or nb == MIN_COINS

    def test_monotonic_in_epsilon(self):
        delta = 2**-10
        nbs = [coins_for_privacy(eps, delta) for eps in (0.25, 0.5, 1.0, 2.0, 4.0)]
        assert nbs == sorted(nbs, reverse=True)

    def test_monotonic_in_delta(self):
        assert coins_for_privacy(1.0, 2**-20) > coins_for_privacy(1.0, 2**-5)

    def test_floor_at_min_coins(self):
        assert coins_for_privacy(100.0, 0.5) == MIN_COINS

    def test_power_of_two_rounding(self):
        nb = coins_for_privacy(1.0, 2**-10, round_to_power_of_two=True)
        assert nb & (nb - 1) == 0
        assert nb >= coins_for_privacy(1.0, 2**-10)

    def test_paper_inconsistency_documented(self):
        """Table 1's caption (ε=0.88 → nb=262144) conflicts with Lemma 2.1,
        which gives nb=985; pin our faithful-to-the-lemma behaviour."""
        assert coins_for_privacy(0.88, 2**-10) == 985
        assert abs(epsilon_for_coins(262_144, 2**-10) - 0.0539) < 0.001

    def test_invalid_parameters(self):
        with pytest.raises(ParameterError):
            coins_for_privacy(0, 0.1)
        with pytest.raises(ParameterError):
            coins_for_privacy(1.0, 0)
        with pytest.raises(ParameterError):
            coins_for_privacy(1.0, 1.5)
        with pytest.raises(ParameterError):
            epsilon_for_coins(10, 0.1)


class TestSampling:
    def test_range(self):
        rng = SeededRNG("s")
        for _ in range(50):
            z = sample_binomial(100, rng)
            assert 0 <= z <= 100

    def test_moments(self):
        """Mean nb/2, variance nb/4 (within generous Monte-Carlo bounds)."""
        rng = SeededRNG("m")
        nb, trials = 200, 2000
        samples = [sample_binomial(nb, rng) for _ in range(trials)]
        mean = sum(samples) / trials
        var = sum((s - mean) ** 2 for s in samples) / trials
        assert abs(mean - nb / 2) < 1.0
        assert abs(var - nb / 4) < 8.0

    def test_zero_coins(self):
        assert sample_binomial(0, SeededRNG("z")) == 0

    def test_negative_rejected(self):
        with pytest.raises(ParameterError):
            sample_binomial(-1)

    @given(st.integers(min_value=1, max_value=300))
    @settings(max_examples=20)
    def test_support(self, nb):
        z = sample_binomial(nb, SeededRNG(f"n{nb}"))
        assert 0 <= z <= nb


class TestMechanism:
    def test_centred_release(self):
        mech = BinomialMechanism(1.0, 2**-10)
        out = mech.release(100.0, SeededRNG("c"))
        assert out.value == 100.0 + out.noise
        assert abs(out.noise) <= mech.nb / 2

    def test_uncentred_release(self):
        mech = BinomialMechanism(1.0, 2**-10, centred=False)
        out = mech.release(0.0, SeededRNG("u"))
        assert 0 <= out.value <= mech.nb

    def test_expected_error_formula(self):
        mech = BinomialMechanism(1.0, 2**-10)
        assert mech.expected_error() == pytest.approx(math.sqrt(mech.nb / (2 * math.pi)))

    def test_error_independent_of_n(self):
        """Central-model property: Err depends only on (ε, δ)."""
        mech = BinomialMechanism(1.0, 2**-10)
        rng = SeededRNG("n-indep")
        small = sum(abs(mech.release(10.0, rng).noise) for _ in range(300)) / 300
        large = sum(abs(mech.release(1e6, rng).noise) for _ in range(300)) / 300
        assert abs(small - large) / mech.expected_error() < 0.3
