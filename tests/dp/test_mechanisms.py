"""Laplace, Gaussian, randomized response, and the Mechanism interface."""

import math

import pytest

from repro.dp.gaussian import GaussianMechanism, sample_gaussian
from repro.dp.laplace import LaplaceMechanism, sample_laplace
from repro.dp.mechanism import counting_query, dp_error
from repro.dp.randomized_response import RandomizedResponse
from repro.errors import ParameterError
from repro.utils.rng import SeededRNG


class TestCountingQuery:
    def test_counting_query(self):
        assert counting_query([1, 0, 1, 1]) == 3
        assert counting_query([]) == 0


class TestLaplace:
    def test_scale(self):
        assert LaplaceMechanism(0.5, sensitivity=2.0).scale == 4.0

    def test_release_structure(self):
        mech = LaplaceMechanism(1.0)
        out = mech.release(10.0, SeededRNG("l"))
        assert out.value == 10.0 + out.noise

    def test_mean_abs_noise_matches_scale(self):
        mech = LaplaceMechanism(1.0)
        rng = SeededRNG("lm")
        mean = sum(abs(mech.release(0.0, rng).noise) for _ in range(3000)) / 3000
        assert mean == pytest.approx(mech.scale, rel=0.15)

    def test_noise_symmetric(self):
        rng = SeededRNG("sym")
        samples = [sample_laplace(1.0, rng) for _ in range(2000)]
        assert abs(sum(samples) / len(samples)) < 0.15

    def test_invalid(self):
        with pytest.raises(ParameterError):
            LaplaceMechanism(0.0)
        with pytest.raises(ParameterError):
            sample_laplace(-1.0)

    def test_expected_error(self):
        assert LaplaceMechanism(2.0).expected_error() == 0.5

    def test_dp_error_estimate(self):
        mech = LaplaceMechanism(1.0)
        err = dp_error(mech, 100.0, trials=2000, rng=SeededRNG("de"))
        assert err == pytest.approx(1.0, rel=0.2)

    def test_dp_error_invalid_trials(self):
        with pytest.raises(ParameterError):
            dp_error(LaplaceMechanism(1.0), 0.0, trials=0)


class TestGaussian:
    def test_sigma_formula(self):
        mech = GaussianMechanism(1.0, 1e-5)
        expected = math.sqrt(2 * math.log(1.25 / 1e-5))
        assert mech.sigma == pytest.approx(expected)

    def test_moments(self):
        rng = SeededRNG("g")
        samples = [sample_gaussian(2.0, rng) for _ in range(3000)]
        mean = sum(samples) / len(samples)
        var = sum((s - mean) ** 2 for s in samples) / len(samples)
        assert abs(mean) < 0.15
        assert var == pytest.approx(4.0, rel=0.15)

    def test_expected_error(self):
        mech = GaussianMechanism(1.0, 1e-5)
        assert mech.expected_error() == pytest.approx(mech.sigma * math.sqrt(2 / math.pi))

    def test_invalid(self):
        with pytest.raises(ParameterError):
            GaussianMechanism(2.0, 1e-5)  # classical calibration needs eps <= 1
        with pytest.raises(ParameterError):
            GaussianMechanism(0.5, 0.0)
        with pytest.raises(ParameterError):
            sample_gaussian(0.0)

    def test_release_vector(self):
        mech = GaussianMechanism(1.0, 1e-5)
        outs = mech.release_vector([1.0, 2.0, 3.0], SeededRNG("v"))
        assert len(outs) == 3


class TestRandomizedResponse:
    def test_flip_probability(self):
        rr = RandomizedResponse(0.0 + 1e-9)
        assert rr.flip_probability == pytest.approx(0.5, abs=1e-6)
        assert RandomizedResponse(10.0).flip_probability < 1e-4

    def test_randomize_bit_values(self):
        rr = RandomizedResponse(1.0)
        rng = SeededRNG("rr")
        assert all(rr.randomize_bit(b, rng) in (0, 1) for b in (0, 1) for _ in range(10))
        with pytest.raises(ParameterError):
            rr.randomize_bit(2)

    def test_debiasing_unbiased(self):
        """Averaged over many runs the estimate matches the true count."""
        rr = RandomizedResponse(1.0)
        rng = SeededRNG("db")
        dataset = [1] * 300 + [0] * 700
        estimates = [rr.run_protocol(dataset, rng).value for _ in range(80)]
        assert sum(estimates) / len(estimates) == pytest.approx(300, abs=25)

    def test_error_grows_with_n(self):
        """The O(√n) penalty of local DP (Section 7)."""
        rr = RandomizedResponse(1.0)
        assert rr.expected_error_for_n(10_000) > 5 * rr.expected_error_for_n(100)
        ratio = rr.expected_error_for_n(10_000) / rr.expected_error_for_n(100)
        assert ratio == pytest.approx(10.0, rel=0.01)  # exactly sqrt scaling

    def test_scalar_release_unsupported(self):
        with pytest.raises(NotImplementedError):
            RandomizedResponse(1.0).release(5.0)

    def test_empty_reports(self):
        with pytest.raises(ParameterError):
            RandomizedResponse(1.0).aggregate([])
