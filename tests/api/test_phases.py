"""The session phase state machine: legal transitions and loud failures."""

import pytest

from repro.api import CountQuery, Phase, Session, TRANSITIONS
from repro.api.phases import advance
from repro.errors import SessionStateError
from repro.utils.rng import SeededRNG

GROUP = "p64-sim"


def make_session(**kwargs):
    kwargs.setdefault("group", GROUP)
    kwargs.setdefault("nb_override", 8)
    kwargs.setdefault("rng", SeededRNG("phases"))
    return Session(CountQuery(1.0, 2**-10), **kwargs)


class TestTransitions:
    def test_advance_legal(self):
        assert advance(Phase.ENROLL, Phase.VALIDATE) is Phase.VALIDATE

    @pytest.mark.parametrize(
        "current,target",
        [
            (Phase.ENROLL, Phase.MORRA),
            (Phase.VALIDATE, Phase.ENROLL),
            (Phase.MORRA, Phase.COMMIT_COINS),
            (Phase.RELEASE, Phase.ENROLL),
            (Phase.DONE, Phase.ENROLL),
        ],
    )
    def test_advance_illegal(self, current, target):
        with pytest.raises(SessionStateError):
            advance(current, target)

    def test_morra_always_follows_commitment(self):
        """Soundness invariant: public bits are only drawn from a phase
        where the coins are already committed."""
        for phase, targets in TRANSITIONS.items():
            if Phase.MORRA in targets:
                assert phase in (Phase.COMMIT_COINS, Phase.ADJUST)

    def test_done_is_terminal(self):
        assert TRANSITIONS[Phase.DONE] == frozenset()


class TestSessionLifecycle:
    def test_starts_in_enroll(self):
        assert make_session().phase is Phase.ENROLL

    def test_release_reaches_done(self):
        session = make_session()
        session.submit([1, 0, 1])
        result = session.release()
        assert result.accepted
        assert session.phase is Phase.DONE

    def test_submit_after_release_rejected(self):
        session = make_session()
        session.submit([1])
        session.release()
        with pytest.raises(SessionStateError):
            session.submit([0])

    def test_release_is_idempotent(self):
        session = make_session()
        session.submit([1, 1])
        first = session.release()
        assert session.release() is first

    def test_engine_submit_after_close_rejected(self):
        session = make_session()
        session.submit([1])
        engine = session.engines[0]
        engine.run_release()
        with pytest.raises(SessionStateError):
            engine.submit_clients([])

    @pytest.mark.parametrize("chunk", [None, 2])
    def test_duplicate_client_id_rejected(self, chunk):
        """A client must not enroll twice — double voting is a
        ParameterError at registration in both execution modes (regression:
        an early streamed draft silently double-counted duplicates)."""
        from repro.errors import ParameterError

        session = make_session(chunk_size=chunk, rng=SeededRNG(f"dup-{chunk}"))
        from repro.core.client import Client

        session.submit([Client("same", [1], SeededRNG("a"))])
        with pytest.raises(ParameterError):
            session.submit([Client("same", [1], SeededRNG("b"))])

    def test_streaming_phases_cycle_per_chunk(self):
        session = make_session(chunk_size=2, rng=SeededRNG("cycle"))
        session.submit([1, 0, 1, 1, 0])
        assert session.phase is Phase.ENROLL
        result = session.release()
        assert result.accepted
        assert session.phase is Phase.DONE
