"""Streaming sessions: chunked submission, incremental verification,
mid-stream cheater pinpointing, and the peak-memory regression guard."""

import gc
import tracemalloc

import pytest

from repro.api import CountQuery, HistogramQuery, Session
from repro.api.engine import ProtocolEngine
from repro.core.client import NonBinaryClient
from repro.core.messages import ClientStatus, ProverStatus
from repro.core.params import setup
from repro.core.prover import NonBitCoinProver, OutputTamperingProver
from repro.utils.rng import SeededRNG

GROUP = "p64-sim"
NB = 8


def streamed_session(chunk_size, *, seed="stream", nb=NB, query=None):
    return Session(
        query or CountQuery(1.0, 2**-10),
        group=GROUP,
        nb_override=nb,
        chunk_size=chunk_size,
        rng=SeededRNG(seed),
    )


class TestChunkedSubmission:
    BITS = [1, 0, 1, 1, 0, 1, 0, 0, 1, 1, 1]

    @pytest.mark.parametrize("chunk", [1, 7, NB])
    def test_chunk_sizes(self, chunk):
        session = streamed_session(chunk, seed=f"chunk-{chunk}")
        session.submit(self.BITS)
        result = session.release()
        assert result.accepted
        count = result.results[0]
        assert sorted(count.audit.valid_clients()) == sorted(
            f"client-{i}" for i in range(len(self.BITS))
        )
        assert abs(count.estimate - sum(self.BITS)) <= NB / 2

    def test_multiple_submit_calls_and_lazy_iterables(self):
        session = streamed_session(3, seed="multi")
        session.submit(iter(self.BITS[:5]))
        session.submit(iter(self.BITS[5:]))
        result = session.release()
        assert result.accepted
        assert len(result.results[0].audit.clients) == len(self.BITS)

    def test_streamed_histogram(self):
        session = streamed_session(
            2, seed="hist",
            query=HistogramQuery(bins=3, epsilon=1.0, delta=2**-10),
        )
        session.submit([0, 1, 0, 2, 0])
        result = session.release()
        assert result.accepted
        assert result.results[0].argmax() == 0

    def test_streamed_drops_public_messages(self):
        """Streaming is incompatible with bulletin replay by design: the
        messages are gone.  Buffered runs retain them."""
        streamed = streamed_session(2, seed="drop")
        streamed.submit(self.BITS)
        engine_result = streamed.release().results[0].engine_result
        assert engine_result.broadcasts == []
        assert engine_result.coin_messages == []

        buffered = Session(
            CountQuery(1.0, 2**-10), group=GROUP, nb_override=NB,
            rng=SeededRNG("keep"),
        )
        buffered.submit(self.BITS)
        kept = buffered.release().results[0].engine_result
        assert len(kept.broadcasts) == len(self.BITS)
        assert len(kept.coin_messages) == 1


class TestMidStreamPinpointing:
    def test_invalid_client_named_during_enrollment(self):
        """A bad validity proof is pinpointed when its chunk folds —
        before release() is ever called."""
        session = streamed_session(2, seed="pin-client")
        session.submit([1, 0])
        session.submit([NonBinaryClient("evil", [7], SeededRNG("e")), 1])
        audit = session.engines[0].verifier.audit
        assert audit.clients["evil"] is ClientStatus.INVALID_PROOF
        assert audit.clients["client-0"] is ClientStatus.VALID
        result = session.release()
        assert result.accepted
        assert "evil" not in result.results[0].audit.valid_clients()

    def test_cheating_coin_prover_caught_in_first_chunk(self):
        """A non-bit coin is named (with its global coin index) from the
        chunk that carries it; later chunks never run."""
        params = setup(1.0, 2**-10, group=GROUP, nb_override=NB)
        cheater = NonBitCoinProver("prover-0", params, SeededRNG("cheat"))
        engine = ProtocolEngine(
            params, provers=[cheater], rng=SeededRNG("run"), chunk_size=2
        )
        engine.submit_clients([])
        release = engine.run_release().release
        assert not release.accepted
        audit = release.audit
        assert audit.provers["prover-0"] is ProverStatus.BAD_COIN_PROOF
        assert any("coin 0" in note for note in audit.notes)

    def test_injecting_prover_caught_streamed_and_buffered(self):
        """Ballot stuffing cheats through the _emit_output hook, which both
        the buffered and streamed release paths run — the streamed engine
        must catch it exactly like the buffered one (regression: an early
        draft cheated via compute_output, which streaming never calls)."""
        from repro.core.client import Client
        from repro.core.prover import InputInjectingProver

        for chunk_size in (None, 3):
            params = setup(1.0, 2**-10, group=GROUP, nb_override=NB)
            cheater = InputInjectingProver(
                "prover-0", params, SeededRNG("inj"), extra=4
            )
            engine = ProtocolEngine(
                params, provers=[cheater], rng=SeededRNG("inj-run"),
                chunk_size=chunk_size,
            )
            engine.submit_clients(
                Client(f"c{i}", [1], SeededRNG(f"c{i}")) for i in range(3)
            )
            release = engine.run_release().release
            assert not release.accepted, f"chunk_size={chunk_size}"
            assert (
                release.audit.provers["prover-0"]
                is ProverStatus.FAILED_FINAL_CHECK
            )

    def test_tampering_prover_fails_streamed_line13(self):
        params = setup(1.0, 2**-10, group=GROUP, nb_override=NB)
        cheater = OutputTamperingProver("prover-0", params, SeededRNG("t"), bias=3)
        engine = ProtocolEngine(
            params, provers=[cheater], rng=SeededRNG("run2"), chunk_size=3
        )
        from repro.core.client import Client

        engine.submit_clients(
            Client(f"c{i}", [1], SeededRNG(f"c{i}")) for i in range(4)
        )
        release = engine.run_release().release
        assert not release.accepted
        assert release.audit.provers["prover-0"] is ProverStatus.FAILED_FINAL_CHECK

    def test_streamed_and_buffered_agree_on_verdicts(self):
        bits = [1, 0, 1, 1, 0, 1]
        verdicts = []
        for chunk in (None, 2):
            session = streamed_session(chunk, seed="agree") if chunk else Session(
                CountQuery(1.0, 2**-10), group=GROUP, nb_override=NB,
                rng=SeededRNG("agree"),
            )
            session.submit(list(bits))
            session.submit([NonBinaryClient("evil", [3], SeededRNG("e"))])
            result = session.release()
            assert result.accepted
            verdicts.append(dict(result.results[0].audit.clients))
        assert verdicts[0] == verdicts[1]


class TestPeakMemoryGuard:
    def _run(self, chunk_size, nb, seed):
        gc.collect()
        tracemalloc.start()
        session = Session(
            CountQuery(1.0, 2**-10), group=GROUP, nb_override=nb,
            chunk_size=chunk_size, rng=SeededRNG(seed),
        )
        session.submit([1, 0, 1, 1] * 4)
        result = session.release()
        _, peak = tracemalloc.get_traced_memory()
        tracemalloc.stop()
        assert result.accepted
        return peak

    def test_streamed_peak_fraction_of_buffered(self):
        """The regression guard: streamed verification must stay well
        under the buffered path's peak allocation.  At nb = 1024 the
        measured ratio is ~0.1; 0.5 is the do-not-regress ceiling."""
        nb = 1024
        streamed = self._run(64, nb, "mem-streamed")
        buffered = self._run(None, nb, "mem-buffered")
        assert streamed < 0.5 * buffered, (
            f"streamed peak {streamed/1e6:.2f}MB vs buffered {buffered/1e6:.2f}MB"
        )
