"""Query descriptions: encodings, plans, budgets, composition rules."""

import pytest

from repro.api import BoundedSumQuery, ComposedQuery, CountQuery, HistogramQuery
from repro.core.plan import AggregationPlan
from repro.errors import ParameterError


class TestCountQuery:
    def test_encoding(self):
        q = CountQuery(1.0, 2**-10)
        assert q.encode(1) == [1]
        assert q.encode(0) == [0]
        with pytest.raises(ParameterError):
            q.encode(2)

    def test_plan_is_identity(self):
        assert CountQuery(1.0, 2**-10).build_plan().is_identity()

    def test_budget(self):
        assert CountQuery(0.5, 0.25).charged_budget() == (0.5, 0.25)


class TestHistogramQuery:
    def test_encoding_one_hot(self):
        q = HistogramQuery(bins=4, epsilon=1.0, delta=2**-10)
        assert q.encode(2) == [0, 0, 1, 0]
        with pytest.raises(ParameterError):
            q.encode(4)

    def test_needs_two_bins(self):
        with pytest.raises(ParameterError):
            HistogramQuery(bins=1, epsilon=1.0, delta=2**-10)

    def test_budget_doubles(self):
        """One-hot input change moves two bins ⇒ end-to-end 2ε, 2δ."""
        assert HistogramQuery(3, 0.5, 0.125).charged_budget() == (1.0, 0.25)


class TestBoundedSumQuery:
    def test_encoding_lsb_first(self):
        q = BoundedSumQuery(value_bits=4, epsilon=1.0, delta=2**-10)
        assert q.encode(13) == [1, 0, 1, 1]
        with pytest.raises(ParameterError):
            q.encode(16)
        with pytest.raises(ParameterError):
            q.encode(-1)

    def test_plan_weights_and_noise(self):
        q = BoundedSumQuery(value_bits=3, epsilon=1.0, delta=2**-10)
        plan = q.build_plan()
        assert plan.lane_weights == ((1, 2, 4),)
        assert plan.noise_weights == (7,)
        assert plan.validity == "bitvec"
        assert not plan.is_identity()

    def test_params_calibrated_at_eps_over_delta(self):
        narrow = BoundedSumQuery(2, 1.0, 2**-10).build_params(
            num_provers=1, group="p64-sim"
        )
        wide = BoundedSumQuery(8, 1.0, 2**-10).build_params(
            num_provers=1, group="p64-sim"
        )
        assert wide.nb > narrow.nb

    def test_value_bits_range(self):
        with pytest.raises(ParameterError):
            BoundedSumQuery(0, 1.0, 2**-10)
        with pytest.raises(ParameterError):
            BoundedSumQuery(33, 1.0, 2**-10)


class TestComposedQuery:
    def test_budget_sums_subqueries(self):
        q = ComposedQuery([
            CountQuery(0.5, 0.1),
            HistogramQuery(3, 0.25, 0.05),
        ])
        assert q.charged_budget() == (0.5 + 0.5, 0.1 + 0.1)

    def test_rejects_empty_and_nested(self):
        with pytest.raises(ParameterError):
            ComposedQuery([])
        inner = ComposedQuery([CountQuery(1.0, 0.1)])
        with pytest.raises(ParameterError):
            ComposedQuery([inner])

    def test_label_names_subqueries(self):
        q = ComposedQuery([CountQuery(1.0, 0.1), BoundedSumQuery(4, 1.0, 0.1)])
        assert "count" in q.label and "bounded-sum[4b]" in q.label


class TestAggregationPlan:
    def test_identity_roundtrip(self):
        plan = AggregationPlan.identity(3)
        assert plan.lanes == 3 and plan.dimension == 3
        assert plan.is_identity()
        assert plan.noise_mean(2, 8) == (8.0, 8.0, 8.0)

    def test_weighted_sum_noise_mean(self):
        plan = AggregationPlan.weighted_sum((1, 2, 4), 7)
        assert plan.lanes == 1 and plan.dimension == 3
        assert plan.noise_mean(1, 8) == (28.0,)

    def test_validation(self):
        with pytest.raises(ParameterError):
            AggregationPlan(lane_weights=(), noise_weights=(), validity="bit")
        with pytest.raises(ParameterError):
            AggregationPlan(
                lane_weights=((1, 0), (1,)), noise_weights=(1, 1), validity="onehot"
            )
        with pytest.raises(ParameterError):
            AggregationPlan(
                lane_weights=((1,),), noise_weights=(1,), validity="wat"
            )
        with pytest.raises(ParameterError):
            AggregationPlan(
                lane_weights=((1, 0),), noise_weights=(1,), validity="bit"
            )
