"""Deprecated shims ≡ new API: byte-identical releases, warn-once.

Per workload (count via ``run_bits``, histogram, bounded sum), the
legacy class and the Session API must produce *identical*
``Release``/audit records under a seeded RNG — the shims are thin
delegations, and these tests keep them that way.
"""

import warnings

import pytest

from repro.api import BoundedSumQuery, CountQuery, HistogramQuery, Session
from repro.core.bounded_sum import VerifiableBoundedSum
from repro.core.histogram import VerifiableHistogram
from repro.core.params import setup
from repro.core.protocol import VerifiableBinomialProtocol
from repro.utils.deprecation import _reset as reset_deprecations
from repro.utils.rng import SeededRNG

GROUP = "p64-sim"
NB = 8


@pytest.fixture(autouse=True)
def fresh_deprecation_registry():
    reset_deprecations()
    yield
    reset_deprecations()


def quiet(callable_, *args, **kwargs):
    with warnings.catch_warnings():
        warnings.simplefilter("ignore", DeprecationWarning)
        return callable_(*args, **kwargs)


class TestByteIdenticalReleases:
    def test_run_bits_equals_count_session(self):
        bits = [1, 0, 1, 1, 0, 1]
        params = setup(1.0, 2**-10, num_provers=2, group=GROUP, nb_override=NB)
        protocol = quiet(VerifiableBinomialProtocol, params, rng=SeededRNG("eq"))
        old = quiet(protocol.run_bits, bits)

        session = Session(
            CountQuery(1.0, 2**-10), num_provers=2, group=GROUP,
            nb_override=NB, rng=SeededRNG("eq"),
        )
        session.submit(bits)
        new = session.release().release

        assert old.release == new  # raw, estimate, accepted, audit — all of it
        assert old.release.audit.clients == new.audit.clients
        assert old.release.audit.provers == new.audit.provers

    def test_histogram_equals_histogram_session(self):
        choices = [0, 2, 1, 0, 0, 2]
        hist = quiet(
            VerifiableHistogram, 3, 1.0, 2**-10,
            num_provers=2, group=GROUP,
            params=setup(1.0, 2**-10, num_provers=2, dimension=3,
                         group=GROUP, nb_override=NB),
            rng=SeededRNG("eq-h"),
        )
        old_release, old_result = hist.run(choices)

        session = Session(
            HistogramQuery(bins=3, epsilon=1.0, delta=2**-10),
            num_provers=2, group=GROUP, nb_override=NB, rng=SeededRNG("eq-h"),
        )
        session.submit(choices)
        new = session.release().release

        assert old_result.release == new
        assert old_release.counts == new.estimate
        assert old_release.accepted == new.accepted

    def test_bounded_sum_equals_sum_session(self):
        values = [3, 7, 12, 0, 15]
        system = quiet(
            VerifiableBoundedSum, 4, 1.0, 2**-10,
            group=GROUP, nb_override=NB,
        )
        base = SeededRNG("eq-b")
        submissions = [
            system.submit(f"client-{i}", v, base.fork(f"client-{i}"))
            for i, v in enumerate(values)
        ]
        old = system.run(submissions, curator_rng=SeededRNG("eq-b"))

        session = Session(
            BoundedSumQuery(value_bits=4, epsilon=1.0, delta=2**-10),
            group=GROUP, nb_override=NB, rng=SeededRNG("eq-b"),
        )
        session.submit(values)
        new = session.release().release

        assert old.raw == new.raw[0]
        assert old.estimate == new.estimate[0]
        assert old.accepted == new.accepted
        assert old.rejected_clients == ()


class TestWarnExactlyOnce:
    def _count_warnings(self, fire, times=3):
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            for _ in range(times):
                fire()
        return [w for w in caught if issubclass(w.category, DeprecationWarning)]

    def test_run_bits_warns_once(self):
        params = setup(1.0, 2**-10, group=GROUP, nb_override=4)

        def fire():
            VerifiableBinomialProtocol(params, rng=SeededRNG("w")).run_bits([1])

        warned = self._count_warnings(fire)
        assert len(warned) == 1
        assert "run_bits" in str(warned[0].message)

    def test_histogram_warns_once(self):
        def fire():
            VerifiableHistogram(2, 1.0, 2**-10, group=GROUP, rng=SeededRNG("w"))

        warned = self._count_warnings(fire)
        assert len(warned) == 1
        assert "VerifiableHistogram" in str(warned[0].message)

    def test_bounded_sum_warns_once(self):
        def fire():
            VerifiableBoundedSum(2, 1.0, 2**-10, group=GROUP, nb_override=4)

        warned = self._count_warnings(fire)
        assert len(warned) == 1
        assert "VerifiableBoundedSum" in str(warned[0].message)

    def test_noise_wrapper_warns_once(self):
        from repro.core.composition import VerifiableNoiseWrapper

        params = setup(1.0, 2**-10, group=GROUP, nb_override=4)

        def fire():
            VerifiableNoiseWrapper(params, SeededRNG("w"))

        warned = self._count_warnings(fire)
        assert len(warned) == 1

    def test_plain_run_does_not_warn(self):
        """run() stays supported for custom prover/verifier wiring."""
        from repro.core.client import Client

        params = setup(1.0, 2**-10, group=GROUP, nb_override=4)

        def fire():
            VerifiableBinomialProtocol(params, rng=SeededRNG("w")).run(
                [Client("c0", [1], SeededRNG("c"))]
            )

        assert self._count_warnings(fire) == []
