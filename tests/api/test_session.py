"""Session end-to-end: every query shape, both deployment models.

Includes the acceptance scenario: a ComposedQuery (count + histogram +
bounded sum) runs end to end in K = 1 and K = 2 with accountant-tracked
budgets.
"""

import pytest

from repro.api import (
    BoundedSumQuery,
    ComposedQuery,
    CountQuery,
    HistogramQuery,
    Session,
)
from repro.core.messages import ClientStatus
from repro.dp.accountant import PrivacyAccountant
from repro.errors import ParameterError
from repro.utils.rng import SeededRNG

GROUP = "p64-sim"
NB = 8


class TestSimpleQueries:
    @pytest.mark.parametrize("k", [1, 2])
    def test_count(self, k):
        session = Session(
            CountQuery(1.0, 2**-10), num_provers=k, group=GROUP,
            nb_override=NB, rng=SeededRNG(f"count-{k}"),
        )
        bits = [1, 0, 1, 1, 0, 1]
        session.submit(bits)
        result = session.release()
        assert result.accepted
        count = result.results[0]
        # Estimate is debiased: raw − K·nb/2; noise spans ±K·nb/2.
        assert abs(count.estimate - sum(bits)) <= k * NB / 2

    @pytest.mark.parametrize("k", [1, 2])
    def test_histogram(self, k):
        session = Session(
            HistogramQuery(bins=3, epsilon=1.0, delta=2**-10),
            num_provers=k, group=GROUP, nb_override=NB,
            rng=SeededRNG(f"hist-{k}"),
        )
        session.submit([0, 0, 0, 1, 2, 0])
        result = session.release()
        assert result.accepted
        histogram = result.results[0]
        assert len(histogram.counts) == 3
        assert histogram.argmax() == 0

    @pytest.mark.parametrize("k", [1, 2])
    def test_bounded_sum(self, k):
        query = BoundedSumQuery(value_bits=4, epsilon=1.0, delta=2**-10)
        session = Session(
            query, num_provers=k, group=GROUP, nb_override=NB,
            rng=SeededRNG(f"bsum-{k}"),
        )
        values = [3, 7, 12, 0, 15]
        session.submit(values)
        result = session.release()
        assert result.accepted
        total = result.results[0]
        # Noise is Δ·Binomial(K·nb, 1/2), debiased by Δ·K·nb/2.
        max_dev = query.sensitivity * k * NB / 2
        assert abs(total.estimate - sum(values)) <= max_dev
        # Raw minus true sum is Δ-divisible (the noise is Δ-scaled).
        assert (total.release.raw[0] - sum(values)) % query.sensitivity == 0

    def test_invalid_client_named_not_fatal(self):
        from repro.core.client import NonBinaryClient

        session = Session(
            CountQuery(1.0, 2**-10), group=GROUP, nb_override=NB,
            rng=SeededRNG("bad-client"),
        )
        session.submit([1, 0])
        session.submit([NonBinaryClient("evil", [5], SeededRNG("evil"))])
        result = session.release()
        assert result.accepted  # the run stands; the cheater is excluded
        audit = result.results[0].audit
        assert audit.clients["evil"] is ClientStatus.INVALID_PROOF
        assert "evil" not in audit.valid_clients()


class TestComposedSessions:
    @pytest.mark.parametrize("k", [1, 2])
    def test_composed_count_histogram_sum(self, k):
        """The acceptance scenario: three-query composition, both models."""
        query = ComposedQuery([
            CountQuery(epsilon=0.5, delta=2**-11),
            HistogramQuery(bins=4, epsilon=0.25, delta=2**-12),
            BoundedSumQuery(value_bits=4, epsilon=0.5, delta=2**-11),
        ])
        session = Session(
            query, num_provers=k, group=GROUP, nb_override=NB,
            rng=SeededRNG(f"composed-{k}"),
        )
        session.submit([(1, 0, 13), (0, 2, 5), (1, 0, 9), (1, 3, 15)])
        result = session.release()
        assert result.accepted
        assert len(result.results) == 3
        count, histogram, total = result.results
        assert abs(count.estimate - 3) <= k * NB / 2
        assert len(histogram.counts) == 4
        assert abs(total.estimate - 42) <= 15 * k * NB / 2

        # Accountant tracked each query's honest end-to-end budget.
        ledger = session.accountant.ledger()
        assert [row[0] for row in ledger] == [
            "count", "histogram[4]", "bounded-sum[4b]"
        ]
        assert ledger[1][1] == pytest.approx(0.5)  # histogram charges 2ε
        eps_total, delta_total = result.total_budget()
        assert eps_total == pytest.approx(0.5 + 0.5 + 0.5)

    def test_shared_accountant_accumulates_across_sessions(self):
        accountant = PrivacyAccountant()
        for seed in ("a", "b"):
            session = Session(
                CountQuery(0.25, 2**-12), group=GROUP, nb_override=NB,
                rng=SeededRNG(seed), accountant=accountant,
            )
            session.submit([1, 0])
            session.release()
        assert accountant.total_basic()[0] == pytest.approx(0.5)

    def test_record_arity_enforced(self):
        query = ComposedQuery([CountQuery(1.0, 0.1), CountQuery(1.0, 0.1)])
        session = Session(query, group=GROUP, nb_override=NB, rng=SeededRNG("ar"))
        with pytest.raises(ParameterError):
            session.submit([(1,)])

    def test_single_query_release_accessor(self):
        session = Session(
            CountQuery(1.0, 2**-10), group=GROUP, nb_override=NB,
            rng=SeededRNG("acc"),
        )
        session.submit([1])
        result = session.release()
        assert result.release is result.results[0].release
        composed = ComposedQuery([CountQuery(1.0, 0.1), CountQuery(1.0, 0.1)])
        s2 = Session(composed, group=GROUP, nb_override=NB, rng=SeededRNG("acc2"))
        s2.submit([(1, 1)])
        r2 = s2.release()
        with pytest.raises(ParameterError):
            _ = r2.release
