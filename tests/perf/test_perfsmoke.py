"""Perf-regression canary: ``pytest -m perfsmoke``.

A reduced version of the batched-verification benchmark that runs in
well under a second, so it can ride along in the tier-1 suite (and be
selected alone with ``-m perfsmoke`` in CI).  The thresholds are
deliberately loose — the canary exists to catch the batch path silently
degenerating to per-proof work (a >5× regression), not to measure.
"""

import time

import pytest

from repro.crypto.fiat_shamir import Transcript
from repro.crypto.pedersen import PedersenParams
from repro.crypto.schnorr_group import SchnorrGroup
from repro.crypto.sigma.batch import batch_verify_bits
from repro.crypto.sigma.or_bit import prove_bits, verify_bits
from repro.utils.rng import SeededRNG

pytestmark = pytest.mark.perfsmoke

N = 192


@pytest.fixture(scope="module")
def pedersen128():
    return PedersenParams(SchnorrGroup.named("p128-sim"))


@pytest.fixture(scope="module")
def proof_batch(pedersen128):
    rng = SeededRNG("perfsmoke")
    bits = [rng.coin() for _ in range(N)]
    cs, os_ = pedersen128.commit_vector(bits, rng)
    proofs = prove_bits(pedersen128, cs, os_, Transcript("ps"), rng)
    return cs, proofs


def test_batch_beats_sequential(pedersen128, proof_batch):
    cs, proofs = proof_batch
    start = time.perf_counter()
    verify_bits(pedersen128, cs, proofs, Transcript("ps"))
    sequential = time.perf_counter() - start

    start = time.perf_counter()
    batch_verify_bits(pedersen128, cs, proofs, Transcript("ps"), SeededRNG("g"))
    batched = time.perf_counter() - start
    # Expected ~4-7x at n=192; 1.5x is the do-not-regress floor.
    assert batched * 1.5 < sequential, (
        f"batched {batched * 1e3:.1f}ms vs sequential {sequential * 1e3:.1f}ms"
    )


def test_batch_absolute_budget(pedersen128, proof_batch):
    """Batched verification of 192 proofs stays under a generous budget."""
    cs, proofs = proof_batch
    start = time.perf_counter()
    batch_verify_bits(pedersen128, cs, proofs, Transcript("ps"), SeededRNG("g"))
    batched = time.perf_counter() - start
    assert batched < 0.25, f"batched path took {batched * 1e3:.0f}ms for {N} proofs"


def test_fixed_base_tables_beat_naive_pow(pedersen128):
    """The cached g/h comb tables must stay faster than plain ``**``.

    Measured ~3.3× for single powers and ~2.2× for fused commits on
    p128-sim; 1.3× is the do-not-regress floor (the tables degenerating
    to naive pow would silently double every Σ-OR verification).
    """
    rng = SeededRNG("fixed-base-perf")
    exps = [rng.field_element(pedersen128.q) for _ in range(300)]
    h = pedersen128.h

    start = time.perf_counter()
    for e in exps:
        h ** e
    naive = time.perf_counter() - start

    start = time.perf_counter()
    for e in exps:
        pedersen128.pow_h(e)
    table = time.perf_counter() - start

    assert table * 1.3 < naive, (
        f"fixed-base table {table * 1e3:.1f}ms vs naive pow {naive * 1e3:.1f}ms"
    )


def test_serialization_overhead_at_nb4096(pedersen128):
    """Wire-layer canary for the distributed front-end (repro.net).

    At nb = 4096 on p128-sim, encoding a full coin-commitment message
    must stay under half the batched verification time (measured ~0.13×),
    and decoding — which *includes* per-element group-membership
    validation, one exponentiation per element by design — under twice
    the sequential verification time (measured ~1.1×).  Regressing past
    these bounds means the serving path's bottleneck moved from
    cryptography to serialization.
    """
    from repro.core.params import PublicParams
    from repro.core.prover import Prover
    from repro.core.verifier import PublicVerifier
    from repro.crypto.serialization import decode_message, encode_message

    params = PublicParams(
        pedersen=pedersen128, epsilon=1.0, delta=2**-10, nb=4096, num_provers=1
    )
    prover = Prover("prover-0", params, SeededRNG("ser-perf"))
    message = prover.commit_coins(b"perfsmoke")

    start = time.perf_counter()
    frame = encode_message(message)
    encode_s = time.perf_counter() - start

    start = time.perf_counter()
    decoded = decode_message(params.group, frame)
    decode_s = time.perf_counter() - start

    batch_verifier = PublicVerifier(params, SeededRNG("v"))
    start = time.perf_counter()
    assert batch_verifier.verify_coin_commitments(decoded, b"perfsmoke")
    batch_s = time.perf_counter() - start

    seq_verifier = PublicVerifier(params, SeededRNG("v2"), batch=False)
    start = time.perf_counter()
    assert seq_verifier.verify_coin_commitments(decoded, b"perfsmoke")
    seq_s = time.perf_counter() - start

    assert encode_s < 0.5 * batch_s, (
        f"encoding 4096 coins took {encode_s * 1e3:.0f}ms vs "
        f"{batch_s * 1e3:.0f}ms batched verification"
    )
    assert decode_s < 2.0 * seq_s, (
        f"decoding 4096 coins took {decode_s * 1e3:.0f}ms vs "
        f"{seq_s * 1e3:.0f}ms sequential verification"
    )


def test_fused_commit_beats_two_pows(pedersen128):
    """Com(x, r) in one interleaved comb walk vs two naive pows (~2.2×
    measured; 1.2× floor)."""
    rng = SeededRNG("fused-commit-perf")
    pairs = [
        (rng.field_element(pedersen128.q), rng.field_element(pedersen128.q))
        for _ in range(200)
    ]
    g, h = pedersen128.g, pedersen128.h

    start = time.perf_counter()
    for x, r in pairs:
        (g ** x) * (h ** r)
    naive = time.perf_counter() - start

    start = time.perf_counter()
    for x, r in pairs:
        pedersen128.commit(x, r)
    fused = time.perf_counter() - start

    assert fused * 1.2 < naive, (
        f"fused commit {fused * 1e3:.1f}ms vs two pows {naive * 1e3:.1f}ms"
    )


def test_signed_pippenger_not_slower_where_selected(pedersen128):
    """Signed-digit buckets vs the unsigned buckets they replace, nb=1024.

    Two claims, one per backend class:

    * ristretto255 (negation free): signed digits are the *selected*
      variant and must actually be faster — the measured win is ~1.1×,
      the do-not-regress floor is parity-with-noise.
    * p128-sim (negation = batched inversion): the selector keeps
      unsigned buckets, so the canary asserts the *auto* "pippenger"
      tier is not slower than explicitly unsigned buckets — i.e. the
      signed path is never silently chosen where it loses.
    """
    from repro.crypto.multiexp import _pippenger_variant, multi_exponentiation
    from repro.crypto.ristretto import RistrettoGroup

    nb = 1024
    group = RistrettoGroup.instance()
    rng = SeededRNG("signed-perfsmoke")
    bases = [group.random_element(rng) for _ in range(nb)]
    exps = [rng.field_element(group.order) for _ in range(nb)]
    bits = max(e.bit_length() for e in exps)
    assert _pippenger_variant(nb, bits, group.multiexp_kernel().neg_muls)[0] == (
        "pippenger-signed"
    )
    start = time.perf_counter()
    multi_exponentiation(group, bases, exps, algorithm="pippenger-unsigned")
    unsigned = time.perf_counter() - start
    start = time.perf_counter()
    multi_exponentiation(group, bases, exps, algorithm="pippenger-signed")
    signed = time.perf_counter() - start
    assert signed < unsigned * 1.15, (
        f"signed {signed * 1e3:.1f}ms vs unsigned {unsigned * 1e3:.1f}ms on ristretto"
    )

    group128 = pedersen128.group
    rng = SeededRNG("signed-perfsmoke-128")
    bases = [group128.random_element(rng) for _ in range(nb)]
    exps = [rng.field_element(group128.order) for _ in range(nb)]
    start = time.perf_counter()
    multi_exponentiation(group128, bases, exps, algorithm="pippenger-unsigned")
    unsigned = time.perf_counter() - start
    start = time.perf_counter()
    multi_exponentiation(group128, bases, exps, algorithm="pippenger")
    auto = time.perf_counter() - start
    assert auto < unsigned * 1.25, (
        f"auto pippenger {auto * 1e3:.1f}ms vs unsigned {unsigned * 1e3:.1f}ms on p128"
    )
