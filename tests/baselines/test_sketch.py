"""The BGI16-style one-hot sketch: completeness and Schwartz–Zippel soundness."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.baselines.sketch import OneHotSketch
from repro.errors import ParameterError
from repro.utils.rng import SeededRNG

Q = 2**61 - 1


def one_hot(m, hot):
    return [1 if i == hot else 0 for i in range(m)]


class TestCompleteness:
    @given(
        m=st.integers(min_value=1, max_value=16),
        data=st.data(),
    )
    @settings(max_examples=25)
    def test_valid_inputs_accepted(self, m, data):
        hot = data.draw(st.integers(min_value=0, max_value=m - 1))
        sketch = OneHotSketch(m, Q)
        packages = sketch.client_prepare(one_hot(m, hot), SeededRNG(f"{m}-{hot}"))
        assert sketch.validate(packages, b"seed")

    def test_many_seeds(self):
        sketch = OneHotSketch(4, Q)
        packages = sketch.client_prepare(one_hot(4, 2), SeededRNG("ms"))
        for i in range(10):
            assert sketch.validate(packages, f"seed-{i}".encode())


class TestSoundness:
    @pytest.mark.parametrize(
        "vector",
        [
            [0, 0, 0, 0],
            [1, 1, 0, 0],
            [2, 0, 0, 0],
            [3, 0, 0, 0],
            [1, 1, 1, 1],
            [0, 0, 0, 5],
            [Q - 1, 1, 1, 0],  # -1 + 1 + 1 = 1 but not one-hot
        ],
    )
    def test_invalid_vectors_rejected(self, vector):
        sketch = OneHotSketch(4, Q)
        packages = sketch.client_prepare(vector, SeededRNG(str(vector)))
        assert not sketch.validate(packages, b"seed")

    def test_bad_correlation_rejected(self):
        """A client lying about B != A² fails the z² reconstruction."""
        sketch = OneHotSketch(4, Q)
        p0, p1 = sketch.client_prepare(one_hot(4, 1), SeededRNG("bc"))
        from repro.baselines.sketch import SketchClientPackage

        tampered = SketchClientPackage(
            p0.x_share, p0.mask_share, (p0.mask_square_share + 1) % Q
        )
        assert not sketch.validate((tampered, p1), b"seed")

    def test_rejection_independent_of_seed(self):
        """Schwartz–Zippel: a fixed invalid input fails for (almost) any r."""
        sketch = OneHotSketch(4, Q)
        packages = sketch.client_prepare([1, 1, 0, 0], SeededRNG("sz"))
        rejections = sum(
            not sketch.validate(packages, f"s{i}".encode()) for i in range(20)
        )
        assert rejections == 20


class TestValidation:
    def test_dimension_mismatch(self):
        sketch = OneHotSketch(4, Q)
        with pytest.raises(ParameterError):
            sketch.client_prepare([1, 0], SeededRNG("x"))

    def test_bad_dimension(self):
        with pytest.raises(ParameterError):
            OneHotSketch(0, Q)

    def test_public_vector_deterministic(self):
        sketch = OneHotSketch(8, Q)
        assert sketch.public_vector(b"s") == sketch.public_vector(b"s")
        assert sketch.public_vector(b"s") != sketch.public_vector(b"t")
        assert all(0 <= r < Q for r in sketch.public_vector(b"s"))
