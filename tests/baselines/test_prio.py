"""PRIO-style system: aggregation correctness and (faithful) vulnerabilities."""

import pytest

from repro.baselines.prio import CorruptPrioServer, PrioSystem
from repro.core.client import encode_choice
from repro.errors import ParameterError
from repro.utils.rng import SeededRNG

Q = 2**127 - 1


def build_system(dimension=3, seed="prio", epsilon=1.0):
    return PrioSystem(dimension, Q, epsilon, 2**-10, rng=SeededRNG(seed))


def submissions_for(system, choices, dimension):
    return [
        system.submit(f"c{i}", encode_choice(ch, dimension), SeededRNG(f"s{i}"))
        for i, ch in enumerate(choices)
    ]


class TestHonestOperation:
    def test_estimates_near_truth(self):
        system = build_system(seed="est")
        choices = [0] * 20 + [1] * 10 + [2] * 5
        result = system.run(submissions_for(system, choices, 3))
        assert len(result.accepted_clients) == 35
        true = [20, 10, 5]
        bound = system.nb  # |noise - mean| <= nb for 2 binomials
        for m in range(3):
            assert abs(result.estimates[m] - true[m]) <= bound

    def test_all_honest_clients_accepted(self):
        system = build_system(seed="acc")
        result = system.run(submissions_for(system, [0, 1, 2, 0], 3))
        assert len(result.accepted_clients) == 4

    def test_malformed_client_rejected_by_honest_servers(self):
        system = build_system(seed="mal")
        subs = submissions_for(system, [0, 1], 3)
        bad_packages = system.sketch.client_prepare([1, 1, 0], SeededRNG("bad"))
        from repro.baselines.prio import PrioClientSubmission

        subs.append(PrioClientSubmission("evil", bad_packages))
        result = system.run(subs)
        assert "evil" not in result.accepted_clients

    def test_server_index_validation(self):
        system = build_system()
        with pytest.raises(ParameterError):
            PrioSystem(
                2, Q, 1.0, 2**-10,
                servers=(system.servers[1], system.servers[0]),
            )


class TestCorruptions:
    def test_drop_attack_silent(self):
        """Figure 1(a): the victim fails 'validation'; no alarm anywhere."""
        system = build_system(seed="drop")
        corrupt = CorruptPrioServer(
            "server-1", 1, system.sketch, system.nb,
            rng=SeededRNG("c"), drop_clients=frozenset({"c0"}),
        )
        system.servers = (system.servers[0], corrupt)
        result = system.run(submissions_for(system, [0, 1, 2], 3))
        assert "c0" not in result.accepted_clients
        assert "c1" in result.accepted_clients

    def test_collusion_admits_illegal_input(self):
        """Figure 1(b): with the client's leaked package, the corrupted
        server forces acceptance of a 3-votes-in-one-bin input."""
        system = build_system(seed="coll")
        packages = system.sketch.client_prepare([3, 0, 0], SeededRNG("ev"))
        corrupt = CorruptPrioServer(
            "server-1", 1, system.sketch, system.nb,
            rng=SeededRNG("c"), collude_with={"evil": (packages[0], 0)},
        )
        system.servers = (system.servers[0], corrupt)
        subs = submissions_for(system, [0, 1], 3)
        from repro.baselines.prio import PrioClientSubmission

        subs.append(PrioClientSubmission("evil", packages))
        result = system.run(subs)
        assert "evil" in result.accepted_clients

    def test_noise_bias_undetectable_in_interface(self):
        """The biased partial aggregate is just another field element —
        nothing in the result distinguishes it."""
        bias = 7
        honest = build_system(seed="nb")
        subs = submissions_for(honest, [0, 0, 1], 2 if False else 3)
        clean = honest.run(subs)

        biased_system = build_system(seed="nb")
        corrupt = CorruptPrioServer(
            "server-1", 1, biased_system.sketch, biased_system.nb,
            rng=SeededRNG("c"), noise_bias=bias,
        )
        biased_system.servers = (biased_system.servers[0], corrupt)
        subs2 = submissions_for(biased_system, [0, 0, 1], 3)
        shifted = biased_system.run(subs2)
        assert len(shifted.accepted_clients) == len(clean.accepted_clients)
        # Same result type, same accepted set: the analyst cannot tell.
