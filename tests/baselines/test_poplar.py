"""Poplar-style heavy hitters: discovery, thresholds, DP noise, attacks."""

import pytest

from repro.baselines.poplar import PoplarSystem
from repro.errors import ParameterError
from repro.utils.rng import SeededRNG

Q = 2**61 - 1


def build(threshold=3, bits=4, seed="pop", **kwargs):
    return PoplarSystem(
        string_bits=bits, q=Q, threshold=threshold, rng=SeededRNG(seed), **kwargs
    )


def encode_all(system, values, seed="cl"):
    return [
        system.encode_client(f"c{i}", v, SeededRNG(f"{seed}{i}"))
        for i, v in enumerate(values)
    ]


class TestHeavyHitters:
    def test_finds_exactly_heavy_strings(self):
        system = build()
        clients = encode_all(system, [5] * 4 + [9] * 3 + [2])
        hitters = system.heavy_hitters(clients)
        assert {h.value for h in hitters} == {5, 9}

    def test_counts_exact_without_dp(self):
        system = build()
        clients = encode_all(system, [7] * 5)
        hitters = system.heavy_hitters(clients)
        assert hitters[0].value == 7 and hitters[0].count == 5.0

    def test_sorted_by_count(self):
        system = build(threshold=2)
        clients = encode_all(system, [1] * 5 + [2] * 3 + [3] * 2)
        hitters = system.heavy_hitters(clients)
        assert [h.value for h in hitters] == [1, 2, 3]

    def test_no_hitters(self):
        system = build(threshold=10)
        clients = encode_all(system, [1, 2, 3])
        assert system.heavy_hitters(clients) == []

    def test_prefix_pruning_still_finds_deep_values(self):
        system = build(threshold=2, bits=6)
        clients = encode_all(system, [63] * 3 + [0] * 2)
        hitters = system.heavy_hitters(clients)
        assert {h.value for h in hitters} == {63, 0}

    def test_with_dp_noise(self):
        """DP-noised counts: heavy string found, count approximately right."""
        system = build(threshold=5, seed="dp", epsilon=2.0, delta=2**-8)
        clients = encode_all(system, [5] * 30)
        hitters = system.heavy_hitters(clients)
        values = {h.value for h in hitters}
        assert 5 in values
        top = next(h for h in hitters if h.value == 5)
        assert abs(top.count - 30) <= system._nb  # two binomials' deviation bound


class TestAttackSurface:
    def test_corrupt_shift_erases_victim(self):
        """Figure 1(a) on Poplar: deflating the victim's first-level share
        prunes the victim's whole prefix subtree — the string held by the
        victims vanishes silently (no party can attribute the deviation)."""
        system = build(threshold=3, seed="atk")
        # Corrupt client c0's contribution at the first prefix level.
        system.corrupt_shift = {("c0", 1)}
        clients = encode_all(system, [5, 5, 5])  # exactly at threshold
        hitters = system.heavy_hitters(clients)
        assert all(h.value != 5 for h in hitters)  # victims' string suppressed

    def test_corrupt_shift_invisible_in_honest_run_shape(self):
        """The corrupted run returns a perfectly ordinary result object —
        contrast with ΠBin where the audit names the cheater."""
        system = build(threshold=3, seed="atk2")
        system.corrupt_shift = {("c0", 1)}
        clients = encode_all(system, [5, 5, 5])
        hitters = system.heavy_hitters(clients)
        assert isinstance(hitters, list)  # no exception, no flag, nothing


class TestValidation:
    def test_value_out_of_domain(self):
        system = build(bits=3)
        with pytest.raises(ParameterError):
            system.encode_client("c", 8)

    def test_bits_range(self):
        with pytest.raises(ParameterError):
            build(bits=0)
        with pytest.raises(ParameterError):
            build(bits=21)

    def test_epsilon_delta_pairing(self):
        with pytest.raises(ParameterError):
            PoplarSystem(string_bits=3, q=Q, threshold=1, epsilon=1.0)
