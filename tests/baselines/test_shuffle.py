"""Shuffle-model baseline: amplification and the corrupted shuffler."""

import pytest

from repro.baselines.shuffle import ShuffleAggregator, amplified_epsilon
from repro.errors import ParameterError
from repro.utils.rng import SeededRNG


class TestAmplification:
    def test_amplification_improves_with_n(self):
        eps0, delta = 0.5, 1e-6
        small = amplified_epsilon(eps0, 100, delta)
        large = amplified_epsilon(eps0, 100_000, delta)
        assert large < small <= eps0

    def test_never_worse_than_local(self):
        assert amplified_epsilon(0.5, 2, 1e-6) <= 0.5

    def test_sqrt_n_scaling(self):
        eps0, delta = 0.2, 1e-8
        a = amplified_epsilon(eps0, 10_000, delta)
        b = amplified_epsilon(eps0, 1_000_000, delta)
        assert a / b == pytest.approx(10.0, rel=0.01)

    def test_validation(self):
        with pytest.raises(ParameterError):
            amplified_epsilon(0.0, 10, 1e-6)
        with pytest.raises(ParameterError):
            amplified_epsilon(1.0, 0, 1e-6)
        with pytest.raises(ParameterError):
            amplified_epsilon(1.0, 10, 0.0)


class TestShuffleAggregator:
    def test_estimate_near_truth(self):
        agg = ShuffleAggregator(2.0, 1e-6, rng=SeededRNG("sh"))
        bits = [1] * 400 + [0] * 600
        estimates = [agg.run(bits, SeededRNG(f"r{i}"))[0] for i in range(30)]
        mean = sum(estimates) / len(estimates)
        assert mean == pytest.approx(400, abs=30)

    def test_reports_central_epsilon(self):
        agg = ShuffleAggregator(0.5, 1e-6, rng=SeededRNG("ce"))
        _, central = agg.run([1, 0] * 500, SeededRNG("r"))
        assert central < 0.5

    def test_corrupt_shuffler_drops_silently(self):
        """The shuffler discards reports 0..49 (all ones); the estimate
        shifts and nothing in the output flags it."""
        bits = [1] * 50 + [0] * 450
        honest = ShuffleAggregator(3.0, 1e-6, rng=SeededRNG("h"))
        corrupt = ShuffleAggregator(
            3.0, 1e-6, rng=SeededRNG("c"), corrupt_drop=frozenset(range(50))
        )
        honest_mean = sum(honest.run(bits, SeededRNG(f"h{i}"))[0] for i in range(20)) / 20
        corrupt_mean = sum(corrupt.run(bits, SeededRNG(f"c{i}"))[0] for i in range(20)) / 20
        assert honest_mean == pytest.approx(50, abs=12)
        assert corrupt_mean == pytest.approx(0, abs=12)

    def test_dropping_everything_raises(self):
        agg = ShuffleAggregator(1.0, 1e-6, corrupt_drop=frozenset(range(3)))
        with pytest.raises(ParameterError):
            agg.run([1, 0, 1], SeededRNG("x"))
