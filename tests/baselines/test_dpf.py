"""Distributed point functions: correctness, shares, key validation."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.baselines.dpf import dpf_eval, dpf_eval_full, dpf_gen
from repro.errors import ParameterError
from repro.utils.rng import SeededRNG

Q = 2**61 - 1


class TestCorrectness:
    @given(
        bits=st.integers(min_value=1, max_value=8),
        data=st.data(),
    )
    @settings(max_examples=20, deadline=None)
    def test_point_function(self, bits, data):
        alpha = data.draw(st.integers(min_value=0, max_value=(1 << bits) - 1))
        beta = data.draw(st.integers(min_value=0, max_value=Q - 1))
        k0, k1 = dpf_gen(alpha, beta, bits, Q, SeededRNG(f"{bits}-{alpha}-{beta}"))
        for x in range(1 << bits):
            total = (dpf_eval(k0, x) + dpf_eval(k1, x)) % Q
            assert total == (beta if x == alpha else 0)

    def test_full_eval_matches_pointwise(self):
        k0, k1 = dpf_gen(11, 5, 5, Q, SeededRNG("full"))
        f0, f1 = dpf_eval_full(k0), dpf_eval_full(k1)
        for x in range(32):
            assert (f0[x] + f1[x]) % Q == (dpf_eval(k0, x) + dpf_eval(k1, x)) % Q

    def test_beta_zero(self):
        k0, k1 = dpf_gen(3, 0, 4, Q, SeededRNG("z"))
        assert all((a + b) % Q == 0 for a, b in zip(dpf_eval_full(k0), dpf_eval_full(k1)))

    def test_domain_boundaries(self):
        k0, k1 = dpf_gen(0, 9, 3, Q, SeededRNG("b0"))
        assert (dpf_eval(k0, 0) + dpf_eval(k1, 0)) % Q == 9
        k0, k1 = dpf_gen(7, 9, 3, Q, SeededRNG("b7"))
        assert (dpf_eval(k0, 7) + dpf_eval(k1, 7)) % Q == 9


class TestPrivacyShape:
    def test_single_key_shares_spread(self):
        """One key's evaluations should look pseudorandom (no obvious
        point structure): check the share at alpha is not special."""
        k0, _ = dpf_gen(5, 1, 4, Q, SeededRNG("priv"))
        values = dpf_eval_full(k0)
        assert len(set(values)) == 16  # all distinct w.h.p.

    def test_keys_differ(self):
        k0, k1 = dpf_gen(2, 3, 4, Q, SeededRNG("kd"))
        assert k0.root_seed != k1.root_seed
        assert k0.party == 0 and k1.party == 1
        assert k0.correction_words == k1.correction_words


class TestValidation:
    def test_alpha_out_of_domain(self):
        with pytest.raises(ParameterError):
            dpf_gen(8, 1, 3, Q, SeededRNG("x"))

    def test_domain_bits_range(self):
        with pytest.raises(ParameterError):
            dpf_gen(0, 1, 0, Q)
        with pytest.raises(ParameterError):
            dpf_gen(0, 1, 41, Q)

    def test_eval_out_of_domain(self):
        k0, _ = dpf_gen(0, 1, 3, Q, SeededRNG("e"))
        with pytest.raises(ParameterError):
            dpf_eval(k0, 8)

    def test_full_eval_cap(self):
        k0, _ = dpf_gen(0, 1, 10, Q, SeededRNG("cap"))
        object.__setattr__(k0, "domain_bits", 23)
        with pytest.raises(ParameterError):
            dpf_eval_full(k0)
