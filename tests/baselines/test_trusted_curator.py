"""Non-verifiable curator baseline and its malicious twin."""

from repro.baselines.trusted_curator import MaliciousCurator, NonVerifiableCurator
from repro.dp.binomial import BinomialMechanism
from repro.utils.rng import SeededRNG


class TestHonestCurator:
    def test_count_release(self):
        curator = NonVerifiableCurator.binomial(1.0, 2**-10)
        out = curator.release_count([1, 0, 1, 1], SeededRNG("c"))
        assert out.value == 3 + out.noise

    def test_histogram_release(self):
        curator = NonVerifiableCurator.binomial(1.0, 2**-10)
        outs = curator.release_histogram([0, 1, 1, 2], 3, SeededRNG("h"))
        assert len(outs) == 3
        assert outs[1].value == 2 + outs[1].noise


class TestMaliciousCurator:
    def test_bias_applied_but_not_reported(self):
        mech = BinomialMechanism(1.0, 2**-10)
        curator = MaliciousCurator(mech, bias=50.0)
        out = curator.release_count([1] * 10, SeededRNG("m"))
        # The released value includes the bias; the reported noise does not.
        assert out.value == 10 + out.noise + 50.0

    def test_histogram_bias(self):
        mech = BinomialMechanism(1.0, 2**-10)
        curator = MaliciousCurator(mech, bias=5.0)
        outs = curator.release_histogram([0, 0, 1], 2, SeededRNG("mh"))
        assert outs[0].value == 2 + outs[0].noise + 5.0

    def test_bias_within_noise_plausible(self):
        """The motivating problem: a bias of ~1 noise std produces releases
        whose deviation is statistically unremarkable."""
        mech = BinomialMechanism(1.0, 2**-10)
        std = (mech.nb ** 0.5) / 2
        curator = MaliciousCurator(mech, bias=std)
        rng = SeededRNG("plaus")
        deviations = [
            abs(curator.release_count([1] * 100, rng).value - 100) for _ in range(50)
        ]
        # Most deviations stay under 4 sigma — indistinguishable from honest noise.
        within = sum(d < 4 * std for d in deviations)
        assert within >= 45
