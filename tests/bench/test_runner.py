"""The experiment harness: every driver returns well-formed rows."""

import pytest

from repro.bench import EXPERIMENTS, format_table
from repro.bench.runner import (
    run_attacks,
    run_err,
    run_fig3,
    run_fig4,
    run_micro,
    run_separation,
    run_table1,
    run_table2,
)


class TestTable1:
    def test_rows_and_columns(self):
        rows = run_table1(group="p64-sim", nb=16, n=500)
        assert len(rows) == 3  # paper / measured / extrapolated
        for col in ("sigma_proof_ms", "sigma_verify_ms", "morra_ms", "aggregation_ms", "check_ms"):
            assert all(col in row for row in rows)
        measured = rows[1]
        assert all(measured[c] >= 0 for c in measured if c != "stage")

    def test_sigma_dominates_morra(self):
        """The paper's qualitative finding: Σ-proof work dwarfs Morra."""
        rows = run_table1(group="p64-sim", nb=32, n=100)
        measured = rows[1]
        assert measured["sigma_proof_ms"] > measured["morra_ms"]


class TestFig3:
    def test_nb_scales_inverse_square(self):
        rows = run_fig3(epsilons=(1.0, 2.0), backends=("p64-sim",), sample=8)
        by_eps = {r["epsilon"]: r for r in rows}
        ratio = by_eps[1.0]["nb"] / by_eps[2.0]["nb"]
        assert ratio == pytest.approx(4.0, rel=0.05)

    def test_total_time_decreasing_in_epsilon(self):
        rows = run_fig3(epsilons=(0.5, 1.0, 2.0), backends=("p64-sim",), sample=8)
        times = [r["prove_total_s"] for r in rows]
        assert times == sorted(times, reverse=True)


class TestFig4:
    def test_sigma_slower_than_sketch(self):
        rows = run_fig4(dimensions=(1, 4), group="p64-sim")
        for row in rows:
            assert row["sigma_prove_ms"] + row["sigma_verify_ms"] > row["sketch_ms"]

    def test_cost_grows_with_dimension(self):
        rows = run_fig4(dimensions=(1, 8), group="p64-sim")
        assert rows[1]["sigma_prove_ms"] > rows[0]["sigma_prove_ms"]


class TestTable2:
    def test_our_row_fully_checked(self):
        rows = run_table2(validate=False)
        ours = next(r for r in rows if r["protocol"].startswith("Our work"))
        assert ours["active"] and ours["central_dp"] and ours["auditable"] and ours["zero_leakage"]

    def test_live_validation(self):
        rows = run_table2(validate=True)
        prio = next(r for r in rows if r["protocol"].startswith("PRIO"))
        ours = next(r for r in rows if r["protocol"].startswith("Our work"))
        assert prio["validated"] == "attack succeeded silently"
        assert ours["validated"] == "cheaters detected+named"


class TestOtherDrivers:
    def test_micro_rows(self):
        rows = run_micro(trials=3)
        names = [r["backend"] for r in rows]
        assert names == ["modp-2048", "ristretto255", "ratio ec/modp"]
        assert all(r["measured_us"] > 0 for r in rows)
        # Note: in pure Python the EC/modp ordering inverts vs the paper
        # (see run_micro docstring); we assert only well-formedness here.
        assert rows[2]["paper_us"] == pytest.approx(328.0 / 35.0)

    def test_err_rows(self):
        rows = run_err(epsilons=(1.0,), ns=(100,), trials=5)
        assert len(rows) == 3
        assert all(r["err"] >= 0 for r in rows)

    def test_attacks_rows(self):
        rows = run_attacks()
        assert len(rows) == 6
        pibin_rows = [r for r in rows if r["system"] == "pibin"]
        assert all(r["detected"] for r in pibin_rows)

    def test_separation_rows(self):
        rows = run_separation()
        assert all(r["succeeded"] for r in rows)


class TestFormatting:
    def test_format_table(self):
        text = format_table([{"a": 1, "b": 2.5}], title="T")
        assert "T" in text and "a" in text and "2.50" in text

    def test_empty(self):
        assert "(no rows)" in format_table([])

    def test_experiment_registry(self):
        assert set(EXPERIMENTS) == {
            "table1", "fig3", "fig4", "table2", "micro", "err", "comm",
            "attacks", "separation", "multiexp", "streaming",
        }

    def test_run_multiexp_rows(self, tmp_path, monkeypatch):
        from repro.bench.runner import run_multiexp

        monkeypatch.setenv("REPRO_BENCH_DIR", str(tmp_path))
        rows = run_multiexp(
            sizes=(1, 4), wide_sizes=(2,), signed_sizes=(64,), emit_json=True
        )
        crossover = [r for r in rows if "kind" not in r]
        assert {r["n"] for r in crossover} == {1, 2, 4}
        assert all(r["naive_ms"] > 0 for r in crossover)
        assert all(r["bits"] > 0 for r in crossover)
        assert all(
            r["selected"] in ("naive", "straus", "pippenger") for r in crossover
        )
        # Calibration feed rows: wNAF width sweep + bucket-variant duel.
        windows = [r for r in rows if r.get("kind") == "straus-window"]
        assert {r["window"] for r in windows} == {3, 4, 5, 6}
        variants = [r for r in rows if r.get("kind") == "pippenger-variants"]
        assert variants and all(
            r["signed_ms"] > 0 and r["unsigned_ms"] > 0 for r in variants
        )
        assert {r["group"] for r in variants} == {"p128-sim", "ristretto255"}
        emitted = tmp_path / "BENCH_multiexp.json"
        assert emitted.exists()
        import json

        payload = json.loads(emitted.read_text())
        assert payload["bench"] == "multiexp"
        assert len(payload["rows"]) == len(rows)

    def test_comm_rows(self):
        from repro.bench.runner import run_comm

        rows = run_comm(group="p64-sim", dimensions=(1, 4))
        assert all(r["bytes"] > 0 for r in rows)
        sigma4 = next(
            r for r in rows if r["M"] == 4 and "sigma" in r["item"]
        )
        sketch4 = next(
            r for r in rows if r["M"] == 4 and "sketch" in r["item"]
        )
        assert sigma4["bytes"] > sketch4["bytes"]  # the bandwidth premium
