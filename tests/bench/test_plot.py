"""ASCII chart rendering."""

import pytest

from repro.bench.plot import ascii_chart
from repro.errors import ParameterError


class TestAsciiChart:
    def test_basic_render(self):
        chart = ascii_chart(
            {"a": [(1, 10), (2, 100), (3, 1000)]},
            title="T", x_label="eps", y_label="ms",
        )
        assert "T" in chart
        assert "o a" in chart  # legend
        assert "(eps)" in chart

    def test_multiple_series_distinct_marks(self):
        chart = ascii_chart(
            {"one": [(1, 1), (2, 2)], "two": [(1, 3), (2, 4)]}, log_y=False
        )
        assert "o one" in chart and "x two" in chart

    def test_log_scale_requires_positive(self):
        with pytest.raises(ParameterError):
            ascii_chart({"a": [(1, 0)]}, log_y=True)

    def test_linear_scale_allows_zero(self):
        chart = ascii_chart({"a": [(0, 0), (1, 5)]}, log_y=False)
        assert "o" in chart

    def test_empty_rejected(self):
        with pytest.raises(ParameterError):
            ascii_chart({})

    def test_single_point(self):
        chart = ascii_chart({"a": [(1, 1)]}, log_y=False)
        assert "o" in chart

    def test_dimensions(self):
        chart = ascii_chart(
            {"a": [(0, 1), (10, 100)]}, width=40, height=8
        )
        data_rows = [l for l in chart.splitlines() if "|" in l]
        assert len(data_rows) == 9  # header row + 8 grid rows
