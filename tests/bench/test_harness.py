"""The run-table harness: validation, canonicalization, runs, the gate.

Pinned here:

* a :class:`RunTable` rejects typos loudly — unknown factors, unknown
  fixed keys, unknown table keys — because a silently-ignored factor is
  an experiment silently not run;
* the factor cross canonicalizes factors a topology cannot express and
  deduplicates the collapsed cells, with stable ``cell_id`` names
  (baselines key on them);
* a tiny real run produces measurement rows with host metadata on every
  raw artifact, a caveat row on single-core hosts, and a
  :class:`HarnessError` (not a quietly-false field) when a cell loses
  byte-identity or sessions;
* :func:`summarize` + :func:`check_baseline` implement the CI perf
  gate: slowdowns beyond the limit and lost coverage are violations,
  new cells are not.
"""

import json
import os

import pytest

from repro.bench import harness
from repro.bench.harness import (
    HarnessError,
    RunTable,
    cell_id,
    check_baseline,
    expand,
    run_cell,
    run_table,
    summarize,
)
from repro.errors import ParameterError


class TestRunTableValidation:
    def test_unknown_factor_rejected(self):
        with pytest.raises(ParameterError, match="unknown factors"):
            RunTable(name="t", factors={"topologie": ["fleet"]})

    def test_unknown_cell_factor_rejected(self):
        with pytest.raises(ParameterError, match="unknown factors in cell"):
            RunTable(name="t", cells=[{"frontend": 2}])

    def test_unknown_fixed_key_rejected(self):
        with pytest.raises(ParameterError, match="unknown fixed keys"):
            RunTable(
                name="t", factors={"nb": [16]}, fixed={"clinets": 4}
            )

    def test_unknown_table_key_rejected(self):
        with pytest.raises(ParameterError, match="unknown run-table keys"):
            RunTable.from_dict({"name": "t", "factors": {"nb": [16]}, "reps": 2})

    def test_needs_factors_or_cells_and_sane_name(self):
        with pytest.raises(ParameterError, match="factors or cells"):
            RunTable(name="t")
        with pytest.raises(ParameterError, match="name"):
            RunTable(name="bad name!", factors={"nb": [16]})
        with pytest.raises(ParameterError, match="repetitions"):
            RunTable(name="t", repetitions=0, factors={"nb": [16]})
        with pytest.raises(ParameterError, match="level list"):
            RunTable(name="t", factors={"nb": []})

    def test_from_file_round_trip(self, tmp_path):
        path = tmp_path / "table.json"
        path.write_text(
            json.dumps(
                {"name": "rt", "repetitions": 2, "factors": {"nb": [16, 32]}}
            )
        )
        table = RunTable.from_file(path)
        assert table.name == "rt" and table.repetitions == 2
        assert len(expand(table)) == 2


class TestExpansion:
    def test_canonicalization_collapses_and_dedups(self):
        """in-process cannot express shards/frontends/delay, so a cross
        over those factors collapses to a single canonical cell."""
        table = RunTable(
            name="t",
            factors={
                "topology": ["in-process"],
                "shards": [0, 2],
                "frontends": [1, 2],
                "reply_delay": [0.0, 0.03],
            },
        )
        cells = expand(table)
        assert len(cells) == 1
        assert cells[0]["shards"] == 0
        assert cells[0]["frontends"] == 0
        assert cells[0]["reply_delay"] == 0.0

    def test_fleet_keeps_its_axes(self):
        table = RunTable(
            name="t",
            factors={"topology": ["fleet"], "frontends": [1, 2], "shards": [0, 2]},
        )
        assert len(expand(table)) == 4

    def test_explicit_cells_joined_with_cross(self):
        table = RunTable(
            name="t",
            factors={"topology": ["in-process"]},
            cells=[{"topology": "fleet", "frontends": 2}],
        )
        assert [c["topology"] for c in expand(table)] == ["in-process", "fleet"]

    def test_unknown_topology_rejected(self):
        table = RunTable(name="t", factors={"topology": ["mesh"]})
        with pytest.raises(ParameterError, match="unknown topology"):
            expand(table)

    def test_cell_id_stable_and_filesystem_safe(self):
        cells = expand(
            RunTable(
                name="t",
                factors={"topology": ["fleet"], "nb": [64], "reply_delay": [0.03]},
            )
        )
        cid = cell_id(cells[0])
        assert cid == "fleet_g-p64-sim_nb64_n1_sh0_f2_d30"
        assert "/" not in cid and " " not in cid


class TestRunAndGate:
    def test_tiny_table_runs_with_artifacts_and_caveat(self, tmp_path):
        table = RunTable(
            name="tiny",
            repetitions=2,
            factors={"topology": ["in-process"], "nb": [16]},
            fixed={"clients": 3, "timeout": 30.0},
        )
        rows = run_table(table, out_dir=tmp_path, progress=lambda line: None)
        measured = [r for r in rows if r.get("kind") != "caveat"]
        assert len(measured) == 2
        for row in measured:
            assert row["byte_identical"] and row["released"] == 1
            raw = tmp_path / f"BENCH_tiny.{row['cell']}.r{row['rep']}.json"
            data = json.loads(raw.read_text())
            assert data["rows"][0]["cpu_count"] >= 1  # host metadata stamped
            assert data["rows"][0]["platform"]
        caveats = [r for r in rows if r.get("kind") == "caveat"]
        if (os.cpu_count() or 1) < 2:
            assert len(caveats) == 1 and caveats[0]["scaling_claim"] == "withheld"
        else:
            assert not caveats

    def test_strict_run_raises_on_lost_invariant(self, monkeypatch):
        monkeypatch.setitem(
            harness._RUNNERS,
            "in-process",
            lambda cell, fixed: {
                "wall_s": 0.1,
                "sessions_per_sec": 10.0,
                "released": 1,
                "accepted": True,
                "byte_identical": False,
            },
        )
        with pytest.raises(HarnessError, match="byte-identity"):
            run_cell({"topology": "in-process", "nb": 16})
        assert not run_cell(
            {"topology": "in-process", "nb": 16}, strict=False
        )["byte_identical"]

    def test_summarize_and_baseline_gate(self):
        rows = [
            {"cell": "a", "wall_s": 1.0},
            {"cell": "a", "wall_s": 3.0},
            {"cell": "b", "wall_s": 2.0},
            {"kind": "caveat", "note": "1-core"},
        ]
        summary = summarize(rows)
        assert summary["cells"]["a"]["mean"] == 2.0
        assert summary["cells"]["a"]["n"] == 2
        assert summary["caveats"] == ["1-core"]

        baseline = {
            "metric": "wall_s",
            "cells": {
                "a": {"mean": 2.0, "stdev": 0.0, "n": 2},
                "gone": {"mean": 1.0, "stdev": 0.0, "n": 2},
            },
        }
        violations = check_baseline(summary, baseline, max_slowdown=2.0)
        assert len(violations) == 1 and "gone" in violations[0]

        slow = {"metric": "wall_s", "cells": {"a": {"mean": 0.5, "stdev": 0, "n": 2}}}
        violations = check_baseline(summary, slow, max_slowdown=2.0)
        assert len(violations) == 1 and "slowdown" in violations[0]

        with pytest.raises(ParameterError, match="metric"):
            check_baseline(summary, {"metric": "other", "cells": {}})
        with pytest.raises(ParameterError, match="max_slowdown"):
            check_baseline(summary, baseline, max_slowdown=0)
