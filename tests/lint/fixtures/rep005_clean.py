"""REP005 clean: finally/with/ownership-transfer release patterns."""

import socket
from multiprocessing import Process


def released_in_finally(host, port, run):
    transport = SocketTransport.connect("me", "you", host, port)
    try:
        run(transport)
    finally:
        transport.close()


def context_managed(host, port, run):
    with socket.socket(socket.AF_INET, socket.SOCK_STREAM) as listener:
        listener.bind((host, port))
        run(listener)


def ownership_transferred(host, port):
    transport = SocketTransport.connect("me", "you", host, port)
    return transport  # the caller owns it now


def handed_to_a_node(host, port, node_cls):
    transport = SocketTransport.connect("me", "you", host, port)
    node_cls(transport).run()  # the node takes over closing


def terminated_in_except(targets, risky_setup):
    started = []
    try:
        for worker_process in [Process(target=t) for t in targets]:
            worker_process.start()
            started.append(worker_process)
        risky_setup()
    except BaseException:
        _terminate_processes(started)
        raise
    finally:
        for worker_process in started:
            worker_process.join(timeout=5.0)


def _terminate_processes(processes):
    for process in processes:
        if process.is_alive():
            process.terminate()
