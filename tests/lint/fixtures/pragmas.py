"""Pragma-suppression fixture: one of each behaviour.

Line numbers matter to the tests; keep the layout stable.
"""

import time


def suppressed_wall_clock():
    return time.time()  # repro: allow[REP001] -- fixture: demo measurement, not a protocol deadline


def unjustified_wall_clock():
    return time.time()  # repro: allow[REP001]


def dead_pragma():
    return time.monotonic()  # repro: allow[REP001] -- nothing to suppress on this line


def unsuppressed_wall_clock():
    return time.time()
