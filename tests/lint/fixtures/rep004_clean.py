"""REP004 clean: attributed aborts, narrow or propagating handlers."""

from repro.errors import EarlyExit, ProtocolAbort, ReproError


def abort_with_blame(party):
    raise ProtocolAbort("commit round failed", party=party)


def early_exit_with_blame():
    raise EarlyExit("peer went silent", party="prover-1")


def narrow_handler(action):
    try:
        action()
    except (ReproError, OSError):
        return None


def cleanup_then_propagate(action, resource):
    try:
        action()
    except BaseException:
        resource.close()
        raise  # bare re-raise: the original failure (and its attribution) survives
