"""REP002 fixture: uniquely-tagged registry covering every message."""

_REGISTRY = None


def _encode(message):
    return b""


def _decode(group, data):
    return None


def _registry():
    global _REGISTRY
    if _REGISTRY is None:
        from tests.lint.fixtures import rep002_messages_clean as m

        _REGISTRY = {
            b"ping": (m.PingMessage, _encode, _decode),
            b"pong": (m.PongMessage, _encode, _decode),
        }
    return _REGISTRY
