"""REP002 fixture: every frozen-dataclass message has a codec entry."""

from dataclasses import dataclass


@dataclass(frozen=True)
class PingMessage:
    sender: str


@dataclass(frozen=True)
class PongMessage:
    sender: str
