"""REP003 true positives: blocking calls inside async def bodies."""

import time


async def poll_forever(transport):
    while True:
        time.sleep(0.1)  # line 8: blocks the loop
        frame = transport.recv("peer")  # line 9: un-awaited blocking recv
        if frame:
            return frame


async def dial(host, port):
    channel = SocketTransport.connect("me", "you", host, port)  # line 15
    listener = SocketTransport("me")  # line 16: sync transport on the loop
    return channel, listener


async def wait_for_peer(listener):
    listener.accept(1)  # line 21: un-awaited accept
