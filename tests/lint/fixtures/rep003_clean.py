"""REP003 clean: awaited I/O, executor-routed blocking work."""

import asyncio
import time


async def poll(transport):
    await asyncio.sleep(0.1)
    return await transport.recv("peer")  # awaited async transport


async def offload(loop, channel):
    # Blocking work belongs in an executor thread; the nested sync
    # callable may block freely — it never runs on the loop.
    def blocking_read():
        time.sleep(0.01)
        return channel.recv("peer")

    return await loop.run_in_executor(None, blocking_read)


async def handshake(transport):
    names = await transport.accept(2, timeout=5.0)
    return names


def sync_helper(transport):
    return transport.recv("peer")  # sync scope: blocking is legal
