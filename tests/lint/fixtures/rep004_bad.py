"""REP004 true positives: unattributed aborts and broad handlers."""

from repro.errors import EarlyExit, ProtocolAbort


def abort_without_blame():
    raise ProtocolAbort("commit round failed")  # line 7: no party=


def early_exit_without_blame():
    raise EarlyExit("peer went silent")  # line 11: no party=


def swallow_everything(action):
    try:
        action()
    except:  # line 17: bare except
        pass


def broad_without_justification(action):
    try:
        action()
    except Exception:  # line 23: broad, no re-raise, no pragma
        return None


def broad_in_tuple(action):
    try:
        action()
    except (ValueError, Exception):  # line 30: Exception inside a tuple
        return None
