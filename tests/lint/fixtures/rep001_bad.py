"""REP001 true positives: every flavour of nondeterminism in one file."""

import os
import random
import secrets
import time
import uuid
from datetime import datetime
from random import randint
from time import time as wall_clock


def draw_noise():
    return random.random()  # line 14: module-level RNG


def draw_key():
    return secrets.token_bytes(32)  # line 18: unseeded entropy


def draw_seed():
    return os.urandom(16)  # line 22: unseeded entropy


def fresh_id():
    return uuid.uuid4().hex  # line 26: nondeterministic identifier


def deadline():
    return time.time() + 5.0  # line 30: wall clock


def stamp():
    return datetime.now()  # line 34: wall clock


def imported_names():
    return randint(0, 1) + wall_clock()  # line 38: both imported forms


def iterate_parties(parties):
    out = []
    for party in {p.strip() for p in parties}:  # line 43: set iteration
        out.append(party)
    return [p for p in set(parties)]  # line 45: comprehension over set()
