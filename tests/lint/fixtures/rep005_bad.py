"""REP005 true positives: resources leaked on the exception path."""

import socket
from multiprocessing import Process


def happy_path_close_only(host, port):
    transport = SocketTransport.connect("me", "you", host, port)  # line 8
    frame = transport.recv("peer")  # a timeout abort here leaks the connection
    transport.close()  # straight-line release only
    return frame


def never_released(host, port):
    listener = socket.socket(socket.AF_INET, socket.SOCK_STREAM)  # line 14
    listener.bind((host, port))
    listener.listen(4)
    return None  # the socket never escapes and is never closed


def children_leak_on_failure(target, risky_setup):
    worker_process = Process(target=target)  # process-like by creation
    worker_process.start()  # line 22
    risky_setup()  # raises => the child is orphaned
    worker_process.join()
