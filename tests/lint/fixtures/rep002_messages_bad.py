"""REP002 fixture: message definitions where one type lacks a codec."""

from dataclasses import dataclass


@dataclass(frozen=True)
class PingMessage:
    sender: str


@dataclass(frozen=True)
class PongMessage:
    sender: str


@dataclass(frozen=True)
class OrphanMessage:  # registered nowhere: REP002 true positive
    sender: str


@dataclass
class MutableRecord:  # not frozen: not part of the wire surface
    notes: list
