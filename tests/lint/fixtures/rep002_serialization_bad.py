"""REP002 fixture: registry with a duplicate tag and a ghost class."""

_REGISTRY = None


def _encode(message):
    return b""


def _decode(group, data):
    return None


def _registry():
    global _REGISTRY
    if _REGISTRY is None:
        from tests.lint.fixtures import rep002_messages_bad as m

        _REGISTRY = {
            b"ping": (m.PingMessage, _encode, _decode),
            b"ping": (m.PongMessage, _encode, _decode),  # duplicate tag
            b"ghost": (m.GhostMessage, _encode, _decode),  # not a message class
        }
    return _REGISTRY
