"""REP001 clean: injected RNG handles, monotonic clocks, sorted sets."""

import time
from random import Random


def draw_noise(rng):
    return rng.randbelow(100)  # injected utils.rng handle


def seeded_stream(seed):
    return Random(seed)  # explicit seeded instance is allowed


def deadline():
    return time.monotonic() + 5.0


def elapsed(start):
    return time.perf_counter() - start


def iterate_parties(parties):
    return [party for party in sorted(set(parties))]


def membership_is_fine(parties, who):
    return who in set(parties)  # membership test, not iteration
