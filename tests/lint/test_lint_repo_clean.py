"""The production tree itself must lint clean — this is the same gate
CI runs (``python -m repro lint --strict src/``), kept as a test so a
plain ``pytest`` run catches new violations without the CI round trip."""

from pathlib import Path

from repro.lint.runner import lint_paths

REPO_ROOT = Path(__file__).resolve().parents[2]
SRC = str(REPO_ROOT / "src")


def test_src_tree_has_no_actionable_findings():
    result = lint_paths([SRC], baseline=None)
    assert result.errors == []
    rendered = "\n".join(f.render() for f in result.findings)
    assert result.findings == [], f"new lint findings:\n{rendered}"


def test_every_suppression_carries_a_written_justification():
    result = lint_paths([SRC], baseline=None)
    assert result.suppressed, "expected the audited pragma sites to exist"
    for finding, why in result.suppressed:
        assert why.strip(), f"unjustified pragma at {finding.path}:{finding.line}"
        # A justification is a sentence, not a placeholder token.
        assert len(why.split()) >= 4, (
            f"justification too thin at {finding.path}:{finding.line}: {why!r}"
        )


def test_checked_in_baseline_is_empty():
    """The linter was adopted with every finding fixed or pragma'd; the
    baseline must not silently regrow (new code justifies or fixes)."""
    import json

    baseline = REPO_ROOT / "lint-baseline.json"
    assert baseline.is_file(), "lint-baseline.json must be checked in"
    assert json.loads(baseline.read_text(encoding="utf-8")) == []
