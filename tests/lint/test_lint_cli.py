"""CLI behaviour of ``python -m repro lint``: output formats, exit
codes, pragma resolution, and baseline grandfathering."""

import json
from pathlib import Path

from repro.cli import main as cli_main
from repro.lint.runner import collect_files, lint_paths, module_name_for

FIXTURES = Path(__file__).parent / "fixtures"
REP001_BAD = str(FIXTURES / "rep001_bad.py")
REP001_CLEAN = str(FIXTURES / "rep001_clean.py")
PRAGMAS = str(FIXTURES / "pragmas.py")


def run_cli(*argv):
    return cli_main(["lint", "--baseline", "none", *argv])


class TestExitCodes:
    def test_advisory_mode_reports_but_exits_zero(self, capsys):
        assert run_cli(REP001_BAD) == 0
        out = capsys.readouterr().out
        assert "REP001" in out
        assert "10 finding(s)" in out

    def test_strict_mode_fails_on_findings(self, capsys):
        assert run_cli("--strict", REP001_BAD) == 1

    def test_strict_mode_passes_clean_file(self, capsys):
        assert run_cli("--strict", REP001_CLEAN) == 0
        assert "0 finding(s)" in capsys.readouterr().out

    def test_missing_path_is_an_error(self, capsys):
        assert run_cli("no/such/path") == 2

    def test_syntax_error_is_an_error_not_a_crash(self, tmp_path, capsys):
        broken = tmp_path / "broken.py"
        broken.write_text("def oops(:\n", encoding="utf-8")
        assert run_cli(str(broken)) == 2
        assert "SyntaxError" in capsys.readouterr().err

    def test_unknown_rule_is_usage_error(self, capsys):
        assert run_cli("--rules", "REP999", REP001_BAD) == 2
        assert "unknown rule" in capsys.readouterr().err


class TestOutputFormats:
    def test_text_findings_are_path_line_col_rule(self, capsys):
        run_cli(REP001_BAD)
        first = capsys.readouterr().out.splitlines()[0]
        assert "rep001_bad.py:14:" in first and "REP001" in first

    def test_json_output_is_machine_readable(self, capsys):
        assert run_cli("--format", "json", REP001_BAD) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["checked_files"] == 1
        assert len(payload["findings"]) == 10
        sample = payload["findings"][0]
        assert {"rule", "path", "line", "col", "message", "code"} <= set(sample)
        assert "REP001" in payload["rules"]

    def test_list_rules_prints_catalog(self, capsys):
        assert cli_main(["lint", "--list-rules"]) == 0
        out = capsys.readouterr().out
        for code in ("REP000", "REP001", "REP002", "REP003", "REP004", "REP005"):
            assert code in out


class TestPragmas:
    """fixtures/pragmas.py holds one of each behaviour (line numbers in
    the fixture's docstring)."""

    def lint(self):
        return lint_paths([PRAGMAS], baseline=None)

    def test_justified_pragma_suppresses(self):
        result = self.lint()
        assert len(result.suppressed) == 1
        finding, why = result.suppressed[0]
        assert finding.rule == "REP001" and finding.line == 10
        assert "demo measurement" in why

    def test_unjustified_pragma_is_rep000_and_does_not_suppress(self):
        result = self.lint()
        rep000 = [f for f in result.findings if f.rule == "REP000"]
        assert any(
            f.line == 14 and "no justification" in f.message for f in rep000
        )
        # The wall-clock finding on that line stays actionable.
        assert any(
            f.rule == "REP001" and f.line == 14 for f in result.findings
        )

    def test_dead_pragma_is_rep000(self):
        result = self.lint()
        assert any(
            f.rule == "REP000" and f.line == 18 and "dead pragma" in f.message
            for f in result.findings
        )

    def test_unsuppressed_finding_stays(self):
        result = self.lint()
        assert any(
            f.rule == "REP001" and f.line == 22 for f in result.findings
        )

    def test_finding_totals(self):
        result = self.lint()
        by_rule = sorted(f.rule for f in result.findings)
        assert by_rule == ["REP000", "REP000", "REP001", "REP001"]

    def test_dead_pragma_not_flagged_when_its_rule_did_not_run(self):
        # Partial runs must not call pragmas dead for rules they skipped.
        result = lint_paths([PRAGMAS], baseline=None, rules=["REP004"])
        assert not any("dead pragma" in f.message for f in result.findings)
        # Pragma *syntax* hygiene still applies on partial runs.
        assert any(
            f.rule == "REP000" and f.line == 14 for f in result.findings
        )


class TestBaseline:
    def write_bad_file(self, tmp_path):
        target = tmp_path / "legacy.py"
        target.write_text(
            "import time\n"
            "\n"
            "\n"
            "def deadline():\n"
            "    return time.time() + 5.0\n",
            encoding="utf-8",
        )
        return target

    def test_write_then_apply_round_trip(self, tmp_path, monkeypatch, capsys):
        monkeypatch.chdir(tmp_path)
        self.write_bad_file(tmp_path)

        # Grandfather the current findings...
        assert cli_main(["lint", "--write-baseline", "legacy.py"]) == 0
        baseline = tmp_path / "lint-baseline.json"
        entries = json.loads(baseline.read_text(encoding="utf-8"))
        assert len(entries) == 1 and entries[0]["rule"] == "REP001"

        # ...then a strict run picks the baseline up by default and passes.
        capsys.readouterr()
        assert cli_main(["lint", "--strict", "legacy.py"]) == 0
        assert "1 baselined" in capsys.readouterr().out

    def test_baseline_matches_on_source_text_not_line_number(
        self, tmp_path, monkeypatch, capsys
    ):
        monkeypatch.chdir(tmp_path)
        target = self.write_bad_file(tmp_path)
        assert cli_main(["lint", "--write-baseline", "legacy.py"]) == 0

        # Insert lines above the finding: it moves but stays baselined.
        target.write_text(
            "import time\n"
            "\n"
            "UNRELATED = 1\n"
            "ALSO_UNRELATED = 2\n"
            "\n"
            "\n"
            "def deadline():\n"
            "    return time.time() + 5.0\n",
            encoding="utf-8",
        )
        assert cli_main(["lint", "--strict", "legacy.py"]) == 0

    def test_new_findings_are_not_grandfathered(
        self, tmp_path, monkeypatch, capsys
    ):
        monkeypatch.chdir(tmp_path)
        target = self.write_bad_file(tmp_path)
        assert cli_main(["lint", "--write-baseline", "legacy.py"]) == 0

        # A *new* violation (different source text) must fail strict mode.
        target.write_text(
            target.read_text(encoding="utf-8")
            + "\n\ndef jitter():\n    return time.time_ns()\n",
            encoding="utf-8",
        )
        capsys.readouterr()
        assert cli_main(["lint", "--strict", "legacy.py"]) == 1
        out = capsys.readouterr().out
        assert "time_ns" in out and "1 baselined" in out

    def test_baseline_none_disables_default_pickup(
        self, tmp_path, monkeypatch, capsys
    ):
        monkeypatch.chdir(tmp_path)
        self.write_bad_file(tmp_path)
        assert cli_main(["lint", "--write-baseline", "legacy.py"]) == 0
        assert cli_main(
            ["lint", "--strict", "--baseline", "none", "legacy.py"]
        ) == 1


class TestCollection:
    def test_collect_walks_directories_sorted(self, tmp_path):
        (tmp_path / "b.py").write_text("x = 1\n", encoding="utf-8")
        (tmp_path / "sub").mkdir()
        (tmp_path / "sub" / "a.py").write_text("y = 2\n", encoding="utf-8")
        (tmp_path / "sub" / "skip.txt").write_text("no\n", encoding="utf-8")
        (tmp_path / "__pycache__").mkdir()
        (tmp_path / "__pycache__" / "c.py").write_text("z = 3\n", encoding="utf-8")
        files = collect_files([str(tmp_path)])
        names = [Path(f).name for f in files]
        assert names == ["b.py", "a.py"]

    def test_module_name_resolution(self):
        import repro.net.aio as aio

        assert module_name_for(aio.__file__) == "repro.net.aio"
        assert module_name_for(REP001_BAD) == ""

    def test_rules_subset_skips_other_rules(self):
        result = lint_paths([REP001_BAD], baseline=None, rules=["REP004"])
        assert result.findings == []
