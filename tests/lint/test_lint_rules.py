"""Per-rule fixture coverage: every rule proves a true positive and
stays quiet on the idiomatic clean version of the same code."""

import ast
from pathlib import Path

from repro.lint import RULES, ModuleContext
from repro.lint.wire import WireExhaustivenessRule

FIXTURES = Path(__file__).parent / "fixtures"


def load(name, module=""):
    path = FIXTURES / name
    source = path.read_text(encoding="utf-8")
    return ModuleContext(
        path=str(path), module=module, source=source, tree=ast.parse(source)
    )


def run_rule(code, fixture, module=""):
    return RULES[code].check_module(load(fixture, module))


class TestREP001Determinism:
    def test_true_positives(self):
        findings = run_rule("REP001", "rep001_bad.py")
        assert len(findings) == 10
        blob = "\n".join(f.message for f in findings)
        for needle in (
            "random.random()",
            "secrets.token_bytes()",
            "os.urandom()",
            "uuid.uuid4()",
            "time.time()",
            "datetime.now()",
            "randint() (from random)",
            "wall_clock() (from time)",
            "unordered set",
        ):
            assert needle in blob, f"missing finding for {needle}"
        assert sum("unordered set" in f.message for f in findings) == 2

    def test_clean(self):
        assert run_rule("REP001", "rep001_clean.py") == []

    def test_scope_exempts_bench_but_not_protocol(self):
        rule = RULES["REP001"]
        assert rule.applies_to("repro.crypto.pedersen")
        assert rule.applies_to("repro.net.aio")
        assert rule.applies_to("repro.core.messages")
        assert not rule.applies_to("repro.bench.runner")
        assert not rule.applies_to("repro.utils.rng")
        # Standalone files (no repro module) always checked.
        assert rule.applies_to("")


class TestREP002WireExhaustiveness:
    def pair(self, messages, serialization):
        rule = RULES["REP002"]
        assert isinstance(rule, WireExhaustivenessRule)
        return rule.check_pair(
            load(messages, module="repro.core.messages"),
            load(serialization, module="repro.crypto.serialization"),
        )

    def test_true_positives(self):
        findings = self.pair(
            "rep002_messages_bad.py", "rep002_serialization_bad.py"
        )
        messages = "\n".join(f.message for f in findings)
        assert "OrphanMessage has no codec entry" in messages
        assert "duplicate wire tag b'ping'" in messages
        assert "GhostMessage" in messages
        # The orphan finding anchors at the class definition line in the
        # messages module, not somewhere in the registry.
        orphan = next(f for f in findings if "OrphanMessage" in f.message)
        assert orphan.path.endswith("rep002_messages_bad.py")
        assert "class OrphanMessage" in orphan.code

    def test_clean(self):
        assert self.pair(
            "rep002_messages_clean.py", "rep002_serialization_clean.py"
        ) == []

    def test_real_repo_registry_is_exhaustive(self):
        """The live invariant: every message in core.messages has a codec."""
        import repro.core.messages as messages_mod
        import repro.crypto.serialization as serial_mod

        rule = RULES["REP002"]
        findings = rule.check_pair(
            load_real(messages_mod.__file__, "repro.core.messages"),
            load_real(serial_mod.__file__, "repro.crypto.serialization"),
        )
        assert findings == []

    def test_counterpart_loaded_from_disk(self):
        """Linting only messages.py still runs the cross-module check."""
        import repro.core.messages as messages_mod

        rule = RULES["REP002"]
        findings = rule.check_project(
            [load_real(messages_mod.__file__, "repro.core.messages")]
        )
        assert findings == []


def load_real(path, module):
    source = Path(path).read_text(encoding="utf-8")
    return ModuleContext(
        path=str(path), module=module, source=source, tree=ast.parse(source)
    )


class TestREP003AsyncHygiene:
    def test_true_positives(self):
        findings = run_rule("REP003", "rep003_bad.py")
        blob = "\n".join(f.message for f in findings)
        assert "time.sleep()" in blob
        assert ".recv()" in blob
        assert "SocketTransport.connect()" in blob
        assert "SocketTransport(...)" in blob
        assert ".accept()" in blob
        assert len(findings) == 5

    def test_clean(self):
        assert run_rule("REP003", "rep003_clean.py") == []


class TestREP004AbortAttribution:
    def test_true_positives(self):
        findings = run_rule("REP004", "rep004_bad.py")
        blob = "\n".join(f.message for f in findings)
        assert "ProtocolAbort raised without party=" in blob
        assert "EarlyExit raised without party=" in blob
        assert "bare except" in blob
        assert sum("except Exception" in f.message for f in findings) == 2
        assert len(findings) == 5

    def test_clean(self):
        assert run_rule("REP004", "rep004_clean.py") == []


class TestREP005ResourceLifecycle:
    def test_true_positives(self):
        findings = run_rule("REP005", "rep005_bad.py")
        by_message = "\n".join(f.message for f in findings)
        assert "'transport' is released only on the straight-line path" in by_message
        assert "'listener' is acquired here but never released" in by_message
        assert "'worker_process' is released only on the straight-line path" in by_message
        assert len(findings) == 3

    def test_clean(self):
        assert run_rule("REP005", "rep005_clean.py") == []

    def test_pr5_regression_shape(self):
        """The literal serve._start_socket bug class PR 5 fixed by hand:
        children started, accept raises, nothing terminates them."""
        source = (
            "def start(context, targets, accept):\n"
            "    processes = [context.Process(target=t) for t in targets]\n"
            "    for process in processes:\n"
            "        process.start()\n"
            "    accept()  # ProtocolAbort on timeout => orphaned children\n"
            "    return processes\n"
        )
        ctx = ModuleContext(
            path="snippet.py", module="", source=source, tree=ast.parse(source)
        )
        findings = RULES["REP005"].check_module(ctx)
        assert len(findings) == 1
        assert "'process'" in findings[0].message


class TestRuleCatalog:
    def test_all_five_rules_registered(self):
        assert sorted(RULES) == [
            "REP001", "REP002", "REP003", "REP004", "REP005",
        ]

    def test_descriptions_nonempty(self):
        for rule in RULES.values():
            assert rule.name and rule.description
