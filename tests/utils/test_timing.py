"""Stopwatch and stage timers."""

import time

import pytest

from repro.utils.timing import StageTimer, Stopwatch


class TestStopwatch:
    def test_accumulates(self):
        sw = Stopwatch()
        with sw.running():
            time.sleep(0.01)
        with sw.running():
            time.sleep(0.01)
        assert sw.elapsed >= 0.02

    def test_stop_without_start_raises(self):
        with pytest.raises(RuntimeError):
            Stopwatch().stop()


class TestStageTimer:
    def test_stage_accumulates_by_name(self):
        t = StageTimer()
        with t.stage("a"):
            time.sleep(0.005)
        with t.stage("a"):
            time.sleep(0.005)
        with t.stage("b"):
            pass
        assert t.stages["a"] >= 0.01
        assert "b" in t.stages
        assert t.total() >= t.stages["a"]

    def test_milliseconds(self):
        t = StageTimer()
        t.add("x", 0.25)
        assert t.milliseconds()["x"] == pytest.approx(250.0)

    def test_merge(self):
        a = StageTimer()
        a.add("x", 1.0)
        b = StageTimer()
        b.add("x", 2.0)
        b.add("y", 3.0)
        a.merge(b)
        assert a.stages == {"x": 3.0, "y": 3.0}

    def test_exception_still_records(self):
        t = StageTimer()
        with pytest.raises(ValueError):
            with t.stage("boom"):
                raise ValueError
        assert "boom" in t.stages
