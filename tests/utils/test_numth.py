"""Number theory: primality, safe primes, inverses, square roots."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import ParameterError
from repro.utils.numth import (
    batch_inverse,
    crt_pair,
    inverse_mod,
    is_probable_prime,
    legendre_symbol,
    miller_rabin,
    next_safe_prime,
    random_safe_prime,
    sqrt_mod,
)
SMALL_PRIMES = [2, 3, 5, 7, 11, 13, 101, 257, 65537, 2**61 - 1]
SMALL_COMPOSITES = [1, 4, 9, 15, 21, 100, 561, 1105, 6601, 2**61 - 3]
CARMICHAELS = [561, 1105, 1729, 2465, 2821, 6601, 8911]


class TestPrimality:
    @pytest.mark.parametrize("p", SMALL_PRIMES)
    def test_primes_recognized(self, p):
        assert is_probable_prime(p)

    @pytest.mark.parametrize("n", SMALL_COMPOSITES)
    def test_composites_rejected(self, n):
        assert not is_probable_prime(n)

    @pytest.mark.parametrize("n", CARMICHAELS)
    def test_carmichael_numbers_rejected(self, n):
        """Fermat pseudoprimes must not fool Miller-Rabin."""
        assert not miller_rabin(n)

    def test_negative_and_zero(self):
        assert not is_probable_prime(0)
        assert not is_probable_prime(-7)

    @given(st.integers(min_value=2, max_value=10_000))
    def test_agrees_with_trial_division(self, n):
        by_trial = n > 1 and all(n % d for d in range(2, int(n**0.5) + 1))
        assert is_probable_prime(n) == by_trial


class TestSafePrimes:
    def test_next_safe_prime(self):
        p = next_safe_prime(100)
        assert p == 107  # 107 = 2*53 + 1
        assert is_probable_prime(p) and is_probable_prime((p - 1) // 2)

    def test_next_safe_prime_small_start(self):
        assert next_safe_prime(2) == 5

    def test_random_safe_prime_bits(self):
        import random

        p = random_safe_prime(24, random.Random(7))
        assert p.bit_length() == 24
        assert is_probable_prime(p) and is_probable_prime((p - 1) // 2)

    def test_random_safe_prime_too_small(self):
        import random

        with pytest.raises(ParameterError):
            random_safe_prime(4, random.Random(0))


class TestInverse:
    @given(st.integers(min_value=1, max_value=10**6))
    def test_inverse_mod_prime(self, a):
        p = 1_000_003
        if a % p == 0:
            return
        inv = inverse_mod(a, p)
        assert (a * inv) % p == 1

    def test_zero_has_no_inverse(self):
        with pytest.raises(ParameterError):
            inverse_mod(0, 17)

    def test_non_coprime_raises(self):
        with pytest.raises(ParameterError):
            inverse_mod(6, 9)


class TestLegendreAndSqrt:
    @pytest.mark.parametrize("p", [11, 13, 101, 1_000_003, 2**61 - 1])
    def test_squares_are_residues(self, p):
        for a in (2, 3, 5, 10):
            sq = (a * a) % p
            assert legendre_symbol(sq, p) == 1
            root = sqrt_mod(sq, p)
            assert (root * root) % p == sq

    def test_legendre_zero(self):
        assert legendre_symbol(0, 13) == 0
        assert legendre_symbol(26, 13) == 0

    def test_non_residue_raises(self):
        # 2 is a non-residue mod 13 (13 ≡ 5 mod 8).
        assert legendre_symbol(2, 13) == -1
        with pytest.raises(ParameterError):
            sqrt_mod(2, 13)

    def test_tonelli_shanks_p_1_mod_4(self):
        """Exercise the general (p % 4 == 1) branch."""
        p = 1_000_117  # 1 mod 4
        assert p % 4 == 1
        for a in range(2, 40):
            sq = (a * a) % p
            root = sqrt_mod(sq, p)
            assert (root * root) % p == sq

    def test_sqrt_of_zero(self):
        assert sqrt_mod(0, 13) == 0


class TestCrt:
    @given(
        st.integers(min_value=0, max_value=10**6),
    )
    def test_crt_reconstructs(self, x):
        m1, m2 = 10_007, 10_009
        x %= m1 * m2
        assert crt_pair(x % m1, m1, x % m2, m2) == x


class TestBatchInverse:
    def test_matches_individual_inverses(self):
        m = 10007
        values = [1, 2, 3, 9999, 123, 2, 5000]
        assert batch_inverse(values, m) == [inverse_mod(v, m) for v in values]

    def test_empty(self):
        assert batch_inverse([], 97) == []

    def test_unreduced_and_negative(self):
        m = 101
        assert batch_inverse([102, -1], m) == [inverse_mod(1, m), inverse_mod(100, m)]

    def test_zero_rejected(self):
        with pytest.raises(ParameterError):
            batch_inverse([3, 0, 5], 97)
