"""Randomness sources: determinism, bounds, independence."""

import pytest
from hypothesis import given, strategies as st

from repro.errors import ParameterError
from repro.utils.rng import SeededRNG, SystemRNG, default_rng


class TestSeededRNG:
    def test_deterministic(self):
        a = SeededRNG("seed").random_bytes(64)
        b = SeededRNG("seed").random_bytes(64)
        assert a == b

    def test_different_seeds_differ(self):
        assert SeededRNG("a").random_bytes(32) != SeededRNG("b").random_bytes(32)

    def test_int_and_bytes_seeds(self):
        assert SeededRNG(42).random_bytes(8) == SeededRNG(42).random_bytes(8)
        assert SeededRNG(b"x").random_bytes(8) == SeededRNG(b"x").random_bytes(8)

    def test_fork_is_independent(self):
        parent = SeededRNG("p")
        child1 = parent.fork("a")
        child2 = parent.fork("b")
        assert child1.random_bytes(16) != child2.random_bytes(16)

    def test_fork_does_not_disturb_parent(self):
        p1 = SeededRNG("p")
        p2 = SeededRNG("p")
        p1.fork("child")
        assert p1.random_bytes(16) == p2.random_bytes(16)

    def test_stream_continuation(self):
        one = SeededRNG("s")
        two = SeededRNG("s")
        combined = one.random_bytes(10) + one.random_bytes(10)
        assert combined == two.random_bytes(20)


class TestBounds:
    @given(st.integers(min_value=1, max_value=2**64))
    def test_randbelow_in_range(self, bound):
        rng = SeededRNG(f"b{bound}")
        for _ in range(5):
            assert 0 <= rng.randbelow(bound) < bound

    @given(st.integers(min_value=1, max_value=256))
    def test_randbits_width(self, bits):
        assert 0 <= SeededRNG("w").randbits(bits) < (1 << bits)

    def test_randrange(self):
        rng = SeededRNG("r")
        for _ in range(20):
            assert 5 <= rng.randrange(5, 10) < 10

    def test_invalid_args(self):
        rng = SeededRNG("x")
        with pytest.raises(ParameterError):
            rng.randbelow(0)
        with pytest.raises(ParameterError):
            rng.randbits(0)
        with pytest.raises(ParameterError):
            rng.randrange(3, 3)

    def test_nonzero_field_element(self):
        rng = SeededRNG("nz")
        for _ in range(50):
            assert 1 <= rng.nonzero_field_element(7) < 7

    def test_coin_distribution(self):
        rng = SeededRNG("coins")
        flips = [rng.coin() for _ in range(2000)]
        assert 800 < sum(flips) < 1200  # ~14 sigma window


class TestShuffle:
    def test_shuffle_is_permutation(self):
        rng = SeededRNG("sh")
        items = list(range(30))
        shuffled = items[:]
        rng.shuffle(shuffled)
        assert sorted(shuffled) == items
        assert shuffled != items  # astronomically unlikely to be identity


class TestSystemRNG:
    def test_produces_requested_bytes(self):
        assert len(SystemRNG().random_bytes(17)) == 17

    def test_default_rng(self):
        assert isinstance(default_rng(None), SystemRNG)
        marker = SeededRNG("m")
        assert default_rng(marker) is marker
