"""Canonical encodings: injectivity and roundtrips."""

import pytest
from hypothesis import given, strategies as st

from repro.errors import EncodingError
from repro.utils.encoding import (
    byte_length,
    bytes_to_int,
    decode_length_prefixed,
    encode_length_prefixed,
    int_to_bytes,
)


class TestIntBytes:
    @given(st.integers(min_value=0, max_value=2**256))
    def test_roundtrip(self, n):
        assert bytes_to_int(int_to_bytes(n)) == n

    @given(st.integers(min_value=0, max_value=2**64 - 1))
    def test_fixed_width_roundtrip(self, n):
        data = int_to_bytes(n, 8)
        assert len(data) == 8
        assert bytes_to_int(data) == n

    def test_negative_rejected(self):
        with pytest.raises(EncodingError):
            int_to_bytes(-1)

    def test_overflow_rejected(self):
        with pytest.raises(EncodingError):
            int_to_bytes(256, 1)

    def test_zero(self):
        assert int_to_bytes(0) == b"\x00"
        assert byte_length(0) == 1

    @given(st.integers(min_value=1, max_value=2**128))
    def test_byte_length_minimal(self, n):
        assert len(int_to_bytes(n)) == byte_length(n)
        assert int_to_bytes(n)[0] != 0 or n == 0


class TestLengthPrefixed:
    @given(st.lists(st.binary(max_size=64), max_size=8))
    def test_roundtrip(self, parts):
        assert decode_length_prefixed(encode_length_prefixed(*parts)) == parts

    @given(
        st.lists(st.binary(max_size=32), max_size=4),
        st.lists(st.binary(max_size=32), max_size=4),
    )
    def test_injective(self, a, b):
        """Different part lists never encode to the same bytes."""
        if a != b:
            assert encode_length_prefixed(*a) != encode_length_prefixed(*b)

    def test_truncated_prefix_rejected(self):
        with pytest.raises(EncodingError):
            decode_length_prefixed(b"\x00\x00\x01")

    def test_truncated_payload_rejected(self):
        with pytest.raises(EncodingError):
            decode_length_prefixed(b"\x00\x00\x00\x05ab")

    def test_empty(self):
        assert decode_length_prefixed(b"") == []
