"""Shared fixtures.

Crypto tests run on the small simulation groups ("p64-sim"/"p128-sim") —
identical code paths to production parameters at a fraction of the cost;
the named production group ("modp-2048") is exercised by a handful of
smoke tests and the benchmark suite.
"""

from __future__ import annotations

import pytest

from repro.crypto.pedersen import PedersenParams
from repro.crypto.ristretto import RistrettoGroup
from repro.crypto.schnorr_group import SchnorrGroup
from repro.utils.rng import SeededRNG


@pytest.fixture(scope="session")
def group64() -> SchnorrGroup:
    return SchnorrGroup.named("p64-sim")


@pytest.fixture(scope="session")
def group128() -> SchnorrGroup:
    return SchnorrGroup.named("p128-sim")


@pytest.fixture(scope="session")
def ristretto() -> RistrettoGroup:
    return RistrettoGroup.instance()


@pytest.fixture(scope="session")
def pedersen64(group64) -> PedersenParams:
    return PedersenParams(group64)


@pytest.fixture(scope="session")
def pedersen128(group128) -> PedersenParams:
    return PedersenParams(group128)


@pytest.fixture()
def rng() -> SeededRNG:
    return SeededRNG("pytest")


def make_rng(label: str) -> SeededRNG:
    return SeededRNG(f"pytest-{label}")
