"""Every example script must run clean (they contain their own asserts)."""

import pathlib
import subprocess
import sys

import pytest

EXAMPLES_DIR = pathlib.Path(__file__).resolve().parent.parent / "examples"
EXAMPLES = sorted(EXAMPLES_DIR.glob("*.py"))


def test_examples_exist():
    names = {p.stem for p in EXAMPLES}
    assert {"quickstart", "election_mpc", "telemetry_attacks",
            "audit_and_separation", "screen_time_sums"} <= names


@pytest.mark.parametrize("script", EXAMPLES, ids=lambda p: p.stem)
def test_example_runs(script):
    result = subprocess.run(
        [sys.executable, str(script)],
        capture_output=True,
        text=True,
        timeout=300,
    )
    assert result.returncode == 0, f"{script.name} failed:\n{result.stderr[-2000:]}"
    assert result.stdout.strip(), f"{script.name} produced no output"
