"""The paper's central claim, as executable assertions:

every attack that succeeds silently against the baselines is detected —
and publicly attributed — by ΠBin.
"""

import pytest

from repro.attacks import (
    collusion_attack_on_pibin,
    collusion_attack_on_prio,
    exclusion_attack_on_pibin,
    exclusion_attack_on_prio,
    noise_biasing_on_curator,
    noise_biasing_on_pibin,
)
from repro.utils.rng import SeededRNG


class TestExclusion:
    def test_prio_attack_succeeds_silently(self):
        outcome = exclusion_attack_on_prio(rng=SeededRNG("t1"))
        assert outcome.succeeded
        assert not outcome.detected

    def test_pibin_detects_and_names(self):
        outcome = exclusion_attack_on_pibin(rng=SeededRNG("t2"))
        assert not outcome.succeeded
        assert outcome.detected
        assert outcome.culprit == "prover-1"


class TestCollusion:
    def test_prio_admits_illegal_input(self):
        outcome = collusion_attack_on_prio(rng=SeededRNG("t3"))
        assert outcome.succeeded
        assert not outcome.detected

    def test_pibin_rejects_illegal_input(self):
        outcome = collusion_attack_on_pibin(rng=SeededRNG("t4"))
        assert not outcome.succeeded
        assert outcome.detected
        assert outcome.culprit == "client-evil"


class TestNoiseBiasing:
    def test_curator_bias_statistically_plausible(self):
        outcome = noise_biasing_on_curator(bias=15.0, rng=SeededRNG("t5"))
        assert outcome.succeeded
        assert not outcome.detected  # z-score within plausible noise

    def test_large_bias_would_stand_out(self):
        """Sanity: an absurd bias does produce an implausible z-score —
        statistics can catch cartoonish cheating, just not subtle bias."""
        outcome = noise_biasing_on_curator(bias=1000.0, rng=SeededRNG("t6"))
        assert outcome.detected

    def test_pibin_catches_any_bias(self):
        for bias in (1, 15):
            outcome = noise_biasing_on_pibin(bias=bias, rng=SeededRNG(f"t7-{bias}"))
            assert not outcome.succeeded
            assert outcome.detected
            assert outcome.culprit == "prover-0"


class TestContrastTable:
    def test_paper_narrative_holds(self):
        """The full 2x3 contrast: baseline attacked ⇒ silent success,
        ΠBin attacked ⇒ detected failure, across all three attacks."""
        pairs = [
            (exclusion_attack_on_prio, exclusion_attack_on_pibin),
            (collusion_attack_on_prio, collusion_attack_on_pibin),
            (noise_biasing_on_curator, noise_biasing_on_pibin),
        ]
        for i, (baseline, ours) in enumerate(pairs):
            b = baseline(rng=SeededRNG(f"ct-b{i}"))
            o = ours(rng=SeededRNG(f"ct-o{i}"))
            assert b.succeeded and not b.detected
            assert not o.succeeded and o.detected
